package render

import (
	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/gpu"
	"gvmr/internal/volume"
)

// Kernel is the ray-casting map kernel for one brick, implementing
// gpu.Kernel. The grid covers the brick's screen footprint padded to 16×16
// blocks (§3.2: "the grid is made to match the size of the sub-image
// (with a potentially small amount of padding) onto which the current
// chunk projects"). Every thread writes exactly one fragment to Out —
// pixels outside the footprint or image write key=-1 placeholders that
// the partition phase discards.
type Kernel struct {
	Cam   *camera.Camera
	Space volume.Space
	Tex   *gpu.Texture3D
	Prm   Params
	FP    camera.Footprint
	// Sampler is the per-pixel sampling routine; nil means ray casting
	// (CastPixel). Swapping in CastPixelSlicing is the §6.1 map-phase
	// pluggability demonstration.
	Sampler SampleFn
	// Out is the emission buffer in "GPU memory": one slot per thread.
	Out []composite.Fragment

	grid gpu.Dim2
}

// SampleFn is a pluggable per-pixel volume sampler.
type SampleFn func(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int) (composite.Fragment, SampleStats)

// NewKernel plans a kernel for one brick; it returns nil (no work) when
// the brick is off screen.
func NewKernel(cam *camera.Camera, sp volume.Space, tex *gpu.Texture3D, prm Params) *Kernel {
	fp, ok := cam.ProjectAABB(tex.Data.Brick.Bounds)
	if !ok {
		return nil
	}
	grid := gpu.Dim2{
		X: (fp.Width() + BlockDim - 1) / BlockDim,
		Y: (fp.Height() + BlockDim - 1) / BlockDim,
	}
	return &Kernel{
		Cam:   cam,
		Space: sp,
		Tex:   tex,
		Prm:   prm.PrepareBrick(tex.Data),
		FP:    fp,
		Out:   make([]composite.Fragment, grid.Count()*BlockDim*BlockDim),
		grid:  grid,
	}
}

// Name implements gpu.Kernel.
func (k *Kernel) Name() string { return "raycast" }

// Grid implements gpu.Kernel.
func (k *Kernel) Grid() gpu.Dim2 { return k.grid }

// Block implements gpu.Kernel.
func (k *Kernel) Block() gpu.Dim2 { return gpu.Dim2{X: BlockDim, Y: BlockDim} }

// OutBytes returns the modeled size of the emission buffer.
func (k *Kernel) OutBytes() int64 {
	return int64(len(k.Out)) * composite.FragmentBytes
}

// RunBlock implements gpu.Kernel: 256 threads, one pixel each.
func (k *Kernel) RunBlock(bx, by int) gpu.Stats {
	var st gpu.Stats
	sample := k.Sampler
	if sample == nil {
		sample = CastPixel
	}
	rowThreads := k.grid.X * BlockDim
	for ty := 0; ty < BlockDim; ty++ {
		for tx := 0; tx < BlockDim; tx++ {
			st.Threads++
			st.Emitted++
			gx := bx*BlockDim + tx
			gy := by*BlockDim + ty
			slot := gy*rowThreads + gx
			px := k.FP.X0 + gx
			py := k.FP.Y0 + gy
			if px > k.FP.X1 || py > k.FP.Y1 {
				// Padding thread: emit a discarded placeholder.
				k.Out[slot] = composite.Placeholder(-1)
				continue
			}
			frag, samples := sample(k.Cam, k.Space, k.Tex.Data, k.Prm, px, py)
			st.Samples += samples.Samples
			st.SamplesSkipped += samples.Skipped
			st.Cells += samples.Cells
			if !frag.IsPlaceholder() {
				st.RaysHit++
			}
			k.Out[slot] = frag
		}
	}
	return st
}
