// Package render implements the ray-casting map kernel: the CUDA-kernel
// equivalent of §3.2 of the paper. Rays are generated per pixel over a
// brick's screen footprint in 16×16 thread blocks, intersected against the
// brick's bounding box (non-intersecting rays immediately emit a
// placeholder), marched at fixed increments with trilinear 3D-texture
// sampling and a 1D transfer function, accumulated front to back with
// early ray termination, and emitted as exactly one homogeneous fragment
// per thread.
package render

import (
	"fmt"
	"math"
	"sync"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// BlockDim is the paper's 16×16 thread-block size.
const BlockDim = 16

// Params configures the ray caster.
type Params struct {
	// TF is the 1D transfer function (required).
	TF *transfer.Func
	// StepVoxels is the marching step in voxel units (the paper uses
	// fixed increments; 1.0 is the classic one-sample-per-voxel rate).
	StepVoxels float32
	// TerminationAlpha is the early-ray-termination threshold.
	TerminationAlpha float32
	// Shading enables Levoy-style gradient (central-difference) diffuse
	// shading of contributing samples; it costs six extra texture
	// fetches per shaded sample, which the cost model charges.
	Shading bool
	// Light is the world-space directional light used when Shading is
	// set; zero means the default oblique light.
	Light vec.V3

	// Prepared by Prepare(): per-Params constants hoisted out of the
	// per-ray and per-sample paths. Zero-value Params still work — the
	// samplers call Prepare lazily — but kernels prepare once up front.
	// The prep* fields snapshot the inputs the constants were derived
	// from, so mutating a prepared Params re-derives instead of silently
	// using stale constants.
	prepared  bool
	prepStep  float32
	prepLight vec.V3
	prepTF    *transfer.Func
	lightNorm vec.V3         // normalised Light (or the default light)
	tfStep    *transfer.Func // opacity-corrected TF when StepVoxels != 1
}

// tfStepCache memoises opacity-corrected transfer tables per
// (*transfer.Func, step), so samplers called per pixel with unprepared
// Params don't rebuild the table per ray. Like the rest of the renderer
// it assumes a transfer function's Table is not mutated after first use
// (transfer.Func documents this). The memo is bounded: workloads that
// build fresh TFs per frame roll it over instead of growing it for the
// process lifetime — a rollover only costs rebuilding a small table.
var tfStepCache = struct {
	sync.Mutex
	m map[tfStepKey]*transfer.Func
}{m: map[tfStepKey]*transfer.Func{}}

const tfStepCacheMax = 64

type tfStepKey struct {
	tf   *transfer.Func
	step float32
}

func correctedTF(tf *transfer.Func, step float32) *transfer.Func {
	key := tfStepKey{tf: tf, step: step}
	tfStepCache.Lock()
	c, ok := tfStepCache.m[key]
	tfStepCache.Unlock()
	if ok {
		return c
	}
	c = tf.OpacityCorrected(step)
	tfStepCache.Lock()
	if len(tfStepCache.m) >= tfStepCacheMax {
		tfStepCache.m = map[tfStepKey]*transfer.Func{}
	}
	tfStepCache.m[key] = c
	tfStepCache.Unlock()
	return c
}

// Prepare returns p with its derived per-Params constants computed: the
// normalised light direction and, for non-unit steps, the transfer
// function with opacity correction folded into its table (replacing a
// math.Pow per sample with nothing). Kernels call it once per brick;
// calling CastPixel directly with unprepared Params still works and
// prepares on the fly (the corrected table is memoised process-wide).
func (p Params) Prepare() Params {
	if p.prepared && p.prepTF == p.TF && p.prepStep == p.StepVoxels && p.prepLight == p.Light {
		return p
	}
	light := p.Light
	if light == (vec.V3{}) {
		light = vec.New3(0.5, 0.8, 0.6)
	}
	p.lightNorm = light.Norm()
	p.tfStep = nil
	if p.TF != nil && p.StepVoxels > 0 && p.StepVoxels != 1 {
		p.tfStep = correctedTF(p.TF, p.StepVoxels)
	}
	p.prepared = true
	p.prepTF, p.prepStep, p.prepLight = p.TF, p.StepVoxels, p.Light
	return p
}

// lookupTF returns the transfer function the sampler should use: the
// opacity-corrected table for non-unit steps, else the original.
func (p *Params) lookupTF() *transfer.Func {
	if p.tfStep != nil {
		return p.tfStep
	}
	return p.TF
}

// shadeAmbient and shadeDiffuse weight the two lighting terms.
const (
	shadeAmbient = 0.35
	shadeDiffuse = 0.65
)

// DefaultParams returns the canonical settings used by the evaluation.
func DefaultParams(tf *transfer.Func) Params {
	return Params{TF: tf, StepVoxels: 1.0, TerminationAlpha: 0.98}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.TF == nil {
		return fmt.Errorf("render: nil transfer function")
	}
	if p.StepVoxels <= 0 {
		return fmt.Errorf("render: non-positive step %v", p.StepVoxels)
	}
	if p.TerminationAlpha <= 0 || p.TerminationAlpha > 1 {
		return fmt.Errorf("render: termination alpha %v outside (0,1]", p.TerminationAlpha)
	}
	return nil
}

// CastPixel marches the ray for pixel (px,py) through the brick core and
// returns the fragment plus the number of texture samples taken. The
// sample positions lie on a per-ray global lattice t = (k+0.5)·step, so a
// ray split across bricks takes exactly the same samples a monolithic
// traversal would — the brick-count invariance the tests verify.
func CastPixel(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int) (composite.Fragment, int64) {
	key := int32(py*cam.Width + px)
	ray := cam.Ray(px, py)
	t0, t1, ok := bd.Brick.Bounds.Intersect(ray)
	if !ok || t1 <= 0 {
		return composite.Placeholder(key), 0
	}
	if t0 < 0 {
		t0 = 0
	}
	step := sp.VoxelSize() * prm.StepVoxels
	// First lattice index k with (k+0.5)·step >= t0.
	k := int64(math.Ceil(float64(t0)/float64(step) - 0.5))
	if k < 0 {
		k = 0
	}
	// Per-Params constants (normalised light, opacity-corrected transfer
	// table for non-unit steps) are hoisted out of the per-ray path;
	// kernels prepare once per brick.
	prm = prm.Prepare()
	tf := prm.lookupTF()

	acc := vec.V4{}
	var samples int64
	// entry < 0 marks "no contributing sample yet"; t is never negative.
	entry := float32(-1)
	for {
		t := (float32(k) + 0.5) * step
		if t >= t1 {
			break
		}
		pos := sp.WorldToVoxel(ray.At(t))
		s := bd.Sample(pos.X, pos.Y, pos.Z)
		samples++
		c := tf.Lookup(s)
		if c.W > 0 {
			if entry < 0 {
				entry = t
			}
			if prm.Shading {
				shade := shadeAt(bd, pos, prm.lightNorm)
				samples += 6
				c.X *= shade
				c.Y *= shade
				c.Z *= shade
			}
			a := c.W
			// Premultiply and accumulate front to back.
			acc = composite.Under(acc, vec.V4{X: c.X * a, Y: c.Y * a, Z: c.Z * a, W: a})
			if acc.W >= prm.TerminationAlpha {
				break
			}
		}
		k++
	}
	if acc.W == 0 {
		return composite.Placeholder(key), samples
	}
	// Depth is the brick entry point along the ray: fragments of one ray
	// across disjoint bricks sort correctly by it.
	if entry < 0 {
		entry = t0
	}
	return composite.Fragment{
		Key: key, R: acc.X, G: acc.Y, B: acc.Z, A: acc.W, Depth: entry,
	}, samples
}

// shadeAt evaluates Levoy-style diffuse shading at a voxel-space position:
// a central-difference gradient (six texture fetches) gives the surface
// normal; the return value scales the sample color.
func shadeAt(bd *volume.BrickData, pos vec.V3, light vec.V3) float32 {
	const h = 1.0 // one-voxel stencil
	g := vec.V3{
		X: bd.Sample(pos.X+h, pos.Y, pos.Z) - bd.Sample(pos.X-h, pos.Y, pos.Z),
		Y: bd.Sample(pos.X, pos.Y+h, pos.Z) - bd.Sample(pos.X, pos.Y-h, pos.Z),
		Z: bd.Sample(pos.X, pos.Y, pos.Z+h) - bd.Sample(pos.X, pos.Y, pos.Z-h),
	}
	if g.Len() < 1e-6 {
		return 1 // homogeneous region: no surface to shade
	}
	n := g.Scale(-1).Norm()
	diffuse := n.Dot(light)
	if diffuse < 0 {
		diffuse = -diffuse // two-sided shading for semi-transparent media
	}
	return shadeAmbient + shadeDiffuse*diffuse
}
