// Package render implements the ray-casting map kernel: the CUDA-kernel
// equivalent of §3.2 of the paper. Rays are generated per pixel over a
// brick's screen footprint in 16×16 thread blocks, intersected against the
// brick's bounding box (non-intersecting rays emit nothing), marched at
// fixed increments with trilinear 3D-texture sampling and a 1D transfer
// function, accumulated front to back with early ray termination, and
// emitted as a homogeneous fragment list per thread — at most one fragment
// per convex brick, one per traversal span under non-convex partitions.
package render

import (
	"fmt"
	"math"
	"sync"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// BlockDim is the paper's 16×16 thread-block size.
const BlockDim = 16

// Params configures the ray caster.
type Params struct {
	// TF is the 1D transfer function (required).
	TF *transfer.Func
	// StepVoxels is the marching step in voxel units (the paper uses
	// fixed increments; 1.0 is the classic one-sample-per-voxel rate).
	StepVoxels float32
	// TerminationAlpha is the early-ray-termination threshold.
	TerminationAlpha float32
	// Shading enables Levoy-style gradient (central-difference) diffuse
	// shading of contributing samples; it costs six extra texture
	// fetches per shaded sample, which the cost model charges.
	Shading bool
	// Light is the world-space directional light used when Shading is
	// set; zero means the default oblique light.
	Light vec.V3
	// NoEmptySkip disables macrocell empty-space skipping: the ray
	// marches every lattice sample like the original §3.2 kernel.
	// Skipping is bit-identical (every skipped sample has transfer-
	// function alpha exactly 0), so this exists for A/B benchmarking and
	// as an escape hatch, not for correctness.
	NoEmptySkip bool

	// Prepared by Prepare(): per-Params constants hoisted out of the
	// per-ray and per-sample paths. Zero-value Params still work — the
	// samplers call Prepare lazily — but kernels prepare once up front.
	// The prep* fields snapshot the inputs the constants were derived
	// from, so mutating a prepared Params re-derives instead of silently
	// using stale constants.
	prepared  bool
	prepStep  float32
	prepLight vec.V3
	prepTF    *transfer.Func
	lightNorm vec.V3         // normalised Light (or the default light)
	tfStep    *transfer.Func // opacity-corrected TF when StepVoxels != 1
	// skip is the per-brick occupancy structure resolved by PrepareBrick;
	// CastPixel falls back to the process-wide memo when it is absent or
	// belongs to a different brick's macrocell grid.
	skip *skipGrid
}

// tfStepCache memoises opacity-corrected transfer tables per
// (*transfer.Func, step), so samplers called per pixel with unprepared
// Params don't rebuild the table per ray. Like the rest of the renderer
// it assumes a transfer function's Table is not mutated after first use
// (transfer.Func documents this). The memo is bounded: at the cap a
// single arbitrary entry is evicted (not the whole map), so steady-state
// workloads sitting near the cap keep their hot tables instead of
// rebuilding every one of them after each insert.
var tfStepCache = struct {
	sync.Mutex
	m map[tfStepKey]*transfer.Func
}{m: map[tfStepKey]*transfer.Func{}}

const tfStepCacheMax = 64

type tfStepKey struct {
	tf   *transfer.Func
	step float32
}

func correctedTF(tf *transfer.Func, step float32) *transfer.Func {
	key := tfStepKey{tf: tf, step: step}
	tfStepCache.Lock()
	c, ok := tfStepCache.m[key]
	tfStepCache.Unlock()
	if ok {
		return c
	}
	c = tf.OpacityCorrected(step)
	tfStepCache.Lock()
	if prior, ok := tfStepCache.m[key]; ok {
		c = prior // a concurrent builder won; share its table
	} else {
		if len(tfStepCache.m) >= tfStepCacheMax {
			evictOne(tfStepCache.m)
		}
		tfStepCache.m[key] = c
	}
	tfStepCache.Unlock()
	return c
}

// Prepare returns p with its derived per-Params constants computed: the
// normalised light direction and, for non-unit steps, the transfer
// function with opacity correction folded into its table (replacing a
// math.Pow per sample with nothing). Kernels call it once per brick;
// calling CastPixel directly with unprepared Params still works and
// prepares on the fly (the corrected table is memoised process-wide).
func (p Params) Prepare() Params {
	if p.prepared && p.prepTF == p.TF && p.prepStep == p.StepVoxels && p.prepLight == p.Light {
		return p
	}
	light := p.Light
	if light == (vec.V3{}) {
		light = vec.New3(0.5, 0.8, 0.6)
	}
	p.lightNorm = light.Norm()
	p.tfStep = nil
	p.skip = nil // per-brick; re-resolved by PrepareBrick or per ray
	if p.TF != nil && p.StepVoxels > 0 && p.StepVoxels != 1 {
		p.tfStep = correctedTF(p.TF, p.StepVoxels)
	}
	p.prepared = true
	p.prepTF, p.prepStep, p.prepLight = p.TF, p.StepVoxels, p.Light
	return p
}

// PrepareBrick returns p prepared (see Prepare) with the empty-space
// structure for bd's macrocell grid resolved, hoisting the occupancy-memo
// lookup out of the per-ray path. Kernels call it once per brick;
// CastPixel called with plain prepared Params resolves the structure
// per ray through the process-wide memo instead.
func (p Params) PrepareBrick(bd *volume.BrickData) Params {
	p = p.Prepare()
	p.skip = resolveSkip(&p, bd)
	return p
}

// resolveSkip returns the skip grid for bd under p, or nil when skipping
// is disabled, impossible (no macrocells, nil TF), or useless (no cell is
// skippable).
func resolveSkip(p *Params, bd *volume.BrickData) *skipGrid {
	if p.NoEmptySkip || p.TF == nil {
		return nil
	}
	mc := bd.Cells()
	if mc == nil {
		return nil
	}
	if p.skip != nil && p.skip.mc == mc {
		return p.skip
	}
	return occupancyFor(mc, p.TF)
}

// lookupTF returns the transfer function the sampler should use: the
// opacity-corrected table for non-unit steps, else the original.
func (p *Params) lookupTF() *transfer.Func {
	if p.tfStep != nil {
		return p.tfStep
	}
	return p.TF
}

// shadeAmbient and shadeDiffuse weight the two lighting terms.
const (
	shadeAmbient = 0.35
	shadeDiffuse = 0.65
)

// DefaultParams returns the canonical settings used by the evaluation.
func DefaultParams(tf *transfer.Func) Params {
	return Params{TF: tf, StepVoxels: 1.0, TerminationAlpha: 0.98}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.TF == nil {
		return fmt.Errorf("render: nil transfer function")
	}
	if p.StepVoxels <= 0 {
		return fmt.Errorf("render: non-positive step %v", p.StepVoxels)
	}
	if p.TerminationAlpha <= 0 || p.TerminationAlpha > 1 {
		return fmt.Errorf("render: termination alpha %v outside (0,1]", p.TerminationAlpha)
	}
	return nil
}

// SampleStats counts one pixel's sampling work: texture samples actually
// taken, samples the empty-space DDA proved invisible and skipped (the
// dense path would have taken Samples + Skipped), and macrocells
// traversed (charged by the cost model at Spec.CellRate).
type SampleStats struct {
	Samples int64
	Skipped int64
	Cells   int64
}

// CastPixel adapts CastRay to the classic single-fragment contract:
// the brick's fragment for pixel (px,py), or a placeholder when the ray
// contributed nothing. Convex bricks yield at most one fragment per
// ray, so nothing is lost in the adaptation.
func CastPixel(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int) (composite.Fragment, SampleStats) {
	return SampleOne(CastRay, cam, sp, bd, prm, px, py)
}

// CastRay marches the ray for pixel (px,py) through the brick core,
// emits the accumulated fragment (nothing when the ray misses or picks
// up no opacity), and returns the sampling work. The sample positions
// lie on a per-ray global lattice t = (k+0.5)·step, so a ray split
// across bricks takes exactly the same samples a monolithic traversal
// would — the brick-count invariance the tests verify.
//
// When the brick carries a macrocell grid (and Params.NoEmptySkip is
// unset), the inner loop is a two-level DDA: macrocells along the ray
// are tested against the transfer function's occupancy table, and runs
// of lattice indices inside provably-invisible cells advance k directly
// without fetching. Skipped samples all have TF alpha exactly 0, and the
// lattice itself never moves, so the accumulated fragment — and with it
// the image — is bit-identical to the dense march (DESIGN.md §8).
func CastRay(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int, emit func(composite.Fragment)) SampleStats {
	var st SampleStats
	key := int32(py*cam.Width + px)
	ray := cam.Ray(px, py)
	t0, t1, ok := bd.Brick.Bounds.Intersect(ray)
	if !ok || t1 <= 0 {
		return st
	}
	if t0 < 0 {
		t0 = 0
	}
	step := sp.VoxelSize() * prm.StepVoxels
	// First lattice index k with (k+0.5)·step >= t0.
	k := int64(math.Ceil(float64(t0)/float64(step) - 0.5))
	if k < 0 {
		k = 0
	}
	// Per-Params constants (normalised light, opacity-corrected transfer
	// table for non-unit steps) are hoisted out of the per-ray path;
	// kernels prepare once per brick (PrepareBrick also resolves the
	// empty-space structure so no memo lookup happens per ray).
	prm = prm.Prepare()
	tf := prm.lookupTF()
	skip := resolveSkip(&prm, bd)
	if skip != nil && !skip.any {
		skip = nil
	}
	// Idealised voxel-space ray for macrocell exit planes. Sample
	// positions are always computed through the exact per-sample
	// expression below; this affine form only bounds how far a run of
	// samples stays inside one cell, and its float deviation from the
	// exact positions (well under half a voxel) is absorbed by the
	// macrocells' one-voxel-per-face dilation, which covers the trilinear
	// footprint of any position up to half a voxel outside the cell.
	var vorg, vdir [3]float32
	kEnd := int64(0)
	if skip != nil {
		inv := 1 / sp.VoxelSize()
		c0 := sp.WorldToVoxel(vec.V3{})
		vorg = [3]float32{ray.Origin.X*inv + c0.X, ray.Origin.Y*inv + c0.Y, ray.Origin.Z*inv + c0.Z}
		vdir = [3]float32{ray.Dir.X * inv, ray.Dir.Y * inv, ray.Dir.Z * inv}
		// kEnd is the first lattice index past the brick under the exact
		// per-sample float32 comparison the dense loop uses; skips clamp
		// to it so every skipped index is one the dense path would take.
		kEnd = int64(math.Ceil(float64(t1)/float64(step) - 0.5))
		if kEnd < k {
			kEnd = k
		}
		for kEnd > k && (float32(kEnd-1)+0.5)*step >= t1 {
			kEnd--
		}
		for (float32(kEnd)+0.5)*step < t1 {
			kEnd++
		}
	}
	lastCell := -1
	// occupiedUntil gates reclassification: while t is below the current
	// occupied cell's exit, samples march densely on one comparison
	// instead of a full cell lookup. Purely an optimisation — dense
	// marching is always correct, so a misjudged exit (float slack) only
	// means classifying a sample early or late, never skipping it.
	occupiedUntil := float32(-1)

	acc := vec.V4{}
	// entry < 0 marks "no contributing sample yet"; t is never negative.
	entry := float32(-1)
	for {
		t := (float32(k) + 0.5) * step
		if t >= t1 {
			break
		}
		pos := sp.WorldToVoxel(ray.At(t))
		if skip != nil && t >= occupiedUntil {
			mc := skip.mc
			cx := clampCell((int(pos.X)-mc.Org[0])>>volume.MacrocellShift, mc.Cells.X)
			cy := clampCell((int(pos.Y)-mc.Org[1])>>volume.MacrocellShift, mc.Cells.Y)
			cz := clampCell((int(pos.Z)-mc.Org[2])>>volume.MacrocellShift, mc.Cells.Z)
			ci := mc.CellIndex(cx, cy, cz)
			if ci != lastCell {
				lastCell = ci
				st.Cells++
			}
			if skip.empty[ci] {
				// Leap to the first lattice index at or beyond the cell's
				// exit, clamped to kEnd. Every index in [k, k2) is a
				// sample the dense path would take, whose TF alpha is
				// exactly 0, so skipping them changes no accumulated bit.
				texit := cellExitT(mc, cx, cy, cz, vorg, vdir)
				k2 := k + 1
				if e := float64(texit)/float64(step) - 0.5; e > float64(k2) {
					if e >= float64(kEnd) {
						k2 = kEnd
					} else {
						k2 = int64(math.Ceil(e))
					}
				}
				st.Skipped += k2 - k
				k = k2
				continue
			}
			occupiedUntil = cellExitT(mc, cx, cy, cz, vorg, vdir)
		}
		s := bd.Sample(pos.X, pos.Y, pos.Z)
		st.Samples++
		c := tf.Lookup(s)
		if c.W > 0 {
			if entry < 0 {
				entry = t
			}
			if prm.Shading {
				shade := shadeAt(bd, pos, prm.lightNorm)
				st.Samples += 6
				c.X *= shade
				c.Y *= shade
				c.Z *= shade
			}
			a := c.W
			// Premultiply and accumulate front to back.
			acc = composite.Under(acc, vec.V4{X: c.X * a, Y: c.Y * a, Z: c.Z * a, W: a})
			if acc.W >= prm.TerminationAlpha {
				break
			}
		}
		k++
	}
	if acc.W == 0 {
		return st
	}
	// Depth is the brick entry point along the ray: fragments of one ray
	// across disjoint bricks sort correctly by it.
	if entry < 0 {
		entry = t0
	}
	emit(composite.Fragment{
		Key: key, R: acc.X, G: acc.Y, B: acc.Z, A: acc.W, Depth: entry,
	})
	return st
}

// clampCell clamps a cell coordinate into [0, n-1]; sample positions sit
// a float rounding error outside the grid at region boundaries.
func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// cellExitT returns the ray parameter at which the idealised voxel-space
// ray leaves macrocell (cx,cy,cz): the nearest forward crossing of the
// cell's exit planes. Axes the ray is parallel to never exit.
func cellExitT(mc *volume.Macrocells, cx, cy, cz int, vorg, vdir [3]float32) float32 {
	cell := [3]int{cx, cy, cz}
	texit := float32(math.Inf(1))
	for a := 0; a < 3; a++ {
		d := vdir[a]
		if d == 0 {
			continue
		}
		boundary := cell[a] << volume.MacrocellShift
		if d > 0 {
			boundary += volume.MacrocellEdge
		}
		tb := (float32(mc.Org[a]+boundary) - vorg[a]) / d
		if tb < texit {
			texit = tb
		}
	}
	return texit
}

// shadeAt evaluates Levoy-style diffuse shading at a voxel-space position:
// a central-difference gradient (six texture fetches) gives the surface
// normal; the return value scales the sample color.
func shadeAt(bd *volume.BrickData, pos vec.V3, light vec.V3) float32 {
	const h = 1.0 // one-voxel stencil
	g := vec.V3{
		X: bd.Sample(pos.X+h, pos.Y, pos.Z) - bd.Sample(pos.X-h, pos.Y, pos.Z),
		Y: bd.Sample(pos.X, pos.Y+h, pos.Z) - bd.Sample(pos.X, pos.Y-h, pos.Z),
		Z: bd.Sample(pos.X, pos.Y, pos.Z+h) - bd.Sample(pos.X, pos.Y, pos.Z-h),
	}
	if g.Len() < 1e-6 {
		return 1 // homogeneous region: no surface to shade
	}
	n := g.Scale(-1).Norm()
	diffuse := n.Dot(light)
	if diffuse < 0 {
		diffuse = -diffuse // two-sided shading for semi-transparent media
	}
	return shadeAmbient + shadeDiffuse*diffuse
}
