// Package render implements the ray-casting map kernel: the CUDA-kernel
// equivalent of §3.2 of the paper. Rays are generated per pixel over a
// brick's screen footprint in 16×16 thread blocks, intersected against the
// brick's bounding box (non-intersecting rays immediately emit a
// placeholder), marched at fixed increments with trilinear 3D-texture
// sampling and a 1D transfer function, accumulated front to back with
// early ray termination, and emitted as exactly one homogeneous fragment
// per thread.
package render

import (
	"fmt"
	"math"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// BlockDim is the paper's 16×16 thread-block size.
const BlockDim = 16

// Params configures the ray caster.
type Params struct {
	// TF is the 1D transfer function (required).
	TF *transfer.Func
	// StepVoxels is the marching step in voxel units (the paper uses
	// fixed increments; 1.0 is the classic one-sample-per-voxel rate).
	StepVoxels float32
	// TerminationAlpha is the early-ray-termination threshold.
	TerminationAlpha float32
	// Shading enables Levoy-style gradient (central-difference) diffuse
	// shading of contributing samples; it costs six extra texture
	// fetches per shaded sample, which the cost model charges.
	Shading bool
	// Light is the world-space directional light used when Shading is
	// set; zero means the default oblique light.
	Light vec.V3
}

// shadeAmbient and shadeDiffuse weight the two lighting terms.
const (
	shadeAmbient = 0.35
	shadeDiffuse = 0.65
)

// DefaultParams returns the canonical settings used by the evaluation.
func DefaultParams(tf *transfer.Func) Params {
	return Params{TF: tf, StepVoxels: 1.0, TerminationAlpha: 0.98}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.TF == nil {
		return fmt.Errorf("render: nil transfer function")
	}
	if p.StepVoxels <= 0 {
		return fmt.Errorf("render: non-positive step %v", p.StepVoxels)
	}
	if p.TerminationAlpha <= 0 || p.TerminationAlpha > 1 {
		return fmt.Errorf("render: termination alpha %v outside (0,1]", p.TerminationAlpha)
	}
	return nil
}

// CastPixel marches the ray for pixel (px,py) through the brick core and
// returns the fragment plus the number of texture samples taken. The
// sample positions lie on a per-ray global lattice t = (k+0.5)·step, so a
// ray split across bricks takes exactly the same samples a monolithic
// traversal would — the brick-count invariance the tests verify.
func CastPixel(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int) (composite.Fragment, int64) {
	key := int32(py*cam.Width + px)
	ray := cam.Ray(px, py)
	t0, t1, ok := bd.Brick.Bounds.Intersect(ray)
	if !ok || t1 <= 0 {
		return composite.Placeholder(key), 0
	}
	if t0 < 0 {
		t0 = 0
	}
	step := sp.VoxelSize() * prm.StepVoxels
	// First lattice index k with (k+0.5)·step >= t0.
	k := int64(math.Ceil(float64(t0)/float64(step) - 0.5))
	if k < 0 {
		k = 0
	}
	// Opacity correction for non-unit steps keeps appearance stable when
	// the step size changes; at StepVoxels == 1 it is exact lookup.
	correct := prm.StepVoxels != 1
	light := prm.Light
	if light == (vec.V3{}) {
		light = vec.New3(0.5, 0.8, 0.6)
	}
	light = light.Norm()

	acc := vec.V4{}
	var samples int64
	entry := float32(math.Inf(1))
	for {
		t := (float32(k) + 0.5) * step
		if t >= t1 {
			break
		}
		pos := sp.WorldToVoxel(ray.At(t))
		s := bd.Sample(pos.X, pos.Y, pos.Z)
		samples++
		c := prm.TF.Lookup(s)
		if c.W > 0 {
			if entry == float32(math.Inf(1)) {
				entry = t
			}
			if prm.Shading {
				shade := shadeAt(bd, pos, light)
				samples += 6
				c.X *= shade
				c.Y *= shade
				c.Z *= shade
			}
			a := c.W
			if correct {
				a = 1 - float32(math.Pow(float64(1-a), float64(prm.StepVoxels)))
			}
			// Premultiply and accumulate front to back.
			acc = composite.Under(acc, vec.V4{X: c.X * a, Y: c.Y * a, Z: c.Z * a, W: a})
			if acc.W >= prm.TerminationAlpha {
				break
			}
		}
		k++
	}
	if acc.W == 0 {
		return composite.Placeholder(key), samples
	}
	// Depth is the brick entry point along the ray: fragments of one ray
	// across disjoint bricks sort correctly by it.
	if entry == float32(math.Inf(1)) {
		entry = t0
	}
	return composite.Fragment{
		Key: key, R: acc.X, G: acc.Y, B: acc.Z, A: acc.W, Depth: entry,
	}, samples
}

// shadeAt evaluates Levoy-style diffuse shading at a voxel-space position:
// a central-difference gradient (six texture fetches) gives the surface
// normal; the return value scales the sample color.
func shadeAt(bd *volume.BrickData, pos vec.V3, light vec.V3) float32 {
	const h = 1.0 // one-voxel stencil
	g := vec.V3{
		X: bd.Sample(pos.X+h, pos.Y, pos.Z) - bd.Sample(pos.X-h, pos.Y, pos.Z),
		Y: bd.Sample(pos.X, pos.Y+h, pos.Z) - bd.Sample(pos.X, pos.Y-h, pos.Z),
		Z: bd.Sample(pos.X, pos.Y, pos.Z+h) - bd.Sample(pos.X, pos.Y, pos.Z-h),
	}
	if g.Len() < 1e-6 {
		return 1 // homogeneous region: no surface to shade
	}
	n := g.Scale(-1).Norm()
	diffuse := n.Dot(light)
	if diffuse < 0 {
		diffuse = -diffuse // two-sided shading for semi-transparent media
	}
	return shadeAmbient + shadeDiffuse*diffuse
}
