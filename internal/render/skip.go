package render

import (
	"sync"

	"gvmr/internal/transfer"
	"gvmr/internal/volume"
)

// This file builds the per-(brick, transfer function, step) empty-space
// structure the ray caster's two-level DDA traverses: a boolean mask over
// a brick's macrocell grid marking cells that are provably invisible
// under the active transfer function. See DESIGN.md §8 for the
// conservativeness argument that makes skipping bit-identical.

// skipGrid marks which macrocells of one grid are skippable under one
// lookup table: those whose (one-voxel-dilated, see volume.Macrocells)
// value range maps to zero opacity everywhere. The dilation is what makes
// per-cell classification sufficient — every trilinear fetch of every
// sample a ray can attribute to the cell reads values inside the cell's
// recorded range, so a zero range-max is a proof of invisibility, not a
// heuristic.
type skipGrid struct {
	mc    *volume.Macrocells
	empty []bool // true = every possible sample here has TF alpha exactly 0
	any   bool   // false when nothing is skippable (dense data or dense TF)
}

// buildSkipGrid evaluates TF emptiness per cell.
func buildSkipGrid(mc *volume.Macrocells, tf *transfer.Func) *skipGrid {
	n := mc.NumCells()
	g := &skipGrid{mc: mc, empty: make([]bool, n)}
	for i := 0; i < n; i++ {
		e := tf.MaxAlphaInRange(mc.Min[i], mc.Max[i]) == 0
		g.empty[i] = e
		g.any = g.any || e
	}
	return g
}

// occCache memoises skip grids per (macrocell grid, transfer function)
// — the same identity discipline as tfStepCache: grids and tables are
// immutable once in use, so pointer identity is value identity. Step
// size is deliberately NOT in the key: opacity correction maps alpha a
// to 1-(1-a)^step, whose zero set equals the original's for any step
// (transfer.Func.OpacityCorrected documents this), so one mask serves
// every step of the same (grid, TF) instead of duplicating per quality
// setting. The memo is bounded two ways: by entry count, and by the bytes it keeps
// reachable (each entry's mask plus the macrocell grid it pins — without
// the byte bound, 64 entries over 1024³ volumes could pin gigabytes the
// staging cache believes it already evicted). At either cap single
// arbitrary entries are evicted, so steady-state workloads near the cap
// don't rebuild every hot entry.
var occCache = struct {
	sync.Mutex
	m     map[occKey]*skipGrid
	bytes int64
}{m: map[occKey]*skipGrid{}}

const (
	occCacheMax      = 64
	occCacheMaxBytes = 256 << 20
)

// occEntryBytes is the retained cost of one memo entry: its own mask
// plus the macrocell grid the entry keeps alive (counted per entry, so
// shared grids are over- rather than under-charged).
func occEntryBytes(k occKey, g *skipGrid) int64 {
	return int64(len(g.empty)) + k.mc.Bytes()
}

type occKey struct {
	mc *volume.Macrocells
	tf *transfer.Func
}

// occupancyFor returns the memoised skip grid for a brick's macrocells
// under tf. The mask is built from the raw table; the step-corrected
// table the sampler actually reads has exactly the same zero set, which
// is all "invisible" means.
func occupancyFor(mc *volume.Macrocells, tf *transfer.Func) *skipGrid {
	key := occKey{mc: mc, tf: tf}
	occCache.Lock()
	g, ok := occCache.m[key]
	occCache.Unlock()
	if ok {
		return g
	}
	g = buildSkipGrid(mc, tf)
	cost := occEntryBytes(key, g)
	occCache.Lock()
	if prior, ok := occCache.m[key]; ok {
		g = prior // a concurrent builder won; share its grid
	} else {
		for len(occCache.m) > 0 &&
			(len(occCache.m) >= occCacheMax || occCache.bytes+cost > occCacheMaxBytes) {
			for k, e := range occCache.m {
				occCache.bytes -= occEntryBytes(k, e)
				delete(occCache.m, k)
				break
			}
		}
		occCache.m[key] = g
		occCache.bytes += cost
	}
	occCache.Unlock()
	return g
}

// evictOne drops a single arbitrary entry from a memo map at capacity.
func evictOne[K comparable, V any](m map[K]V) {
	for k := range m {
		delete(m, k)
		return
	}
}
