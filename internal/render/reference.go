package render

import (
	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// Reference renders a full image by ray casting the entire volume in one
// monolithic pass (no bricking, no MapReduce). It is the ground truth the
// distributed renderer is tested against, and also serves as the per-node
// inner loop of the CPU-cluster baseline.
func Reference(cam *camera.Camera, src volume.Source, prm Params, background vec.V4) ([]vec.V4, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	prm = prm.Prepare()
	grid, err := volume.MakeGrid(src.Dims(), [3]int{1, 1, 1})
	if err != nil {
		return nil, err
	}
	bd, err := volume.FillBrick(src, grid.Bricks[0])
	if err != nil {
		return nil, err
	}
	img := make([]vec.V4, cam.Pixels())
	for py := 0; py < cam.Height; py++ {
		for px := 0; px < cam.Width; px++ {
			frag, _ := CastPixel(cam, grid.Space, bd, prm, px, py)
			if frag.IsPlaceholder() {
				img[py*cam.Width+px] = composite.Finalize(vec.V4{}, background)
			} else {
				img[py*cam.Width+px] = composite.Finalize(frag.Color(), background)
			}
		}
	}
	return img, nil
}
