package render

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

func TestSlicingHitsAndMisses(t *testing.T) {
	src, cam, prm := testScene(t, 32, 64)
	bd, sp := wholeBrick(t, src)
	frag, samples := CastPixelSlicing(cam, sp, bd, prm, 32, 32)
	if frag.IsPlaceholder() {
		t.Fatal("center ray should hit through slicing")
	}
	if samples.Samples == 0 {
		t.Error("no slices sampled")
	}
	// Corner misses.
	miss, s := CastPixelSlicing(cam, sp, bd, prm, 0, 0)
	if !miss.IsPlaceholder() || s.Samples != 0 {
		t.Error("corner ray should miss")
	}
}

func TestSlicingSampleCountNearRayCast(t *testing.T) {
	// A ray and a slice stack traverse the same depth; with a dominant
	// axis nearly parallel to the view, counts should be within ~2x.
	src, cam, prm := testScene(t, 32, 64)
	prm.TerminationAlpha = 1.0
	bd, sp := wholeBrick(t, src)
	_, rcSt := CastPixel(cam, sp, bd, prm, 32, 32)
	_, slSt := CastPixelSlicing(cam, sp, bd, prm, 32, 32)
	// The ray caster's dense-lattice count (taken + skipped) is the
	// traversal density the slice stack should be near.
	rc, sl := rcSt.Samples+rcSt.Skipped, slSt.Samples
	if sl == 0 || rc == 0 {
		t.Fatal("no samples")
	}
	ratio := float64(sl) / float64(rc)
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("slicing samples %d vs raycast %d (ratio %.2f)", sl, rc, ratio)
	}
}

// Property: the slicing sampler is seamless across bricks — per-brick
// fragments composited in depth order match the whole-volume slicing
// result, because all bricks share the global slab-plane stack.
func TestSlicingBrickSeamlessProperty(t *testing.T) {
	src, err := dataset.New(dataset.Supernova, volume.Cube(24))
	if err != nil {
		t.Fatal(err)
	}
	sp := volume.NewSpace(src.Dims())
	cam, err := camera.Fit(sp.Bounds(), 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams(transfer.SupernovaPreset())
	prm.TerminationAlpha = 1.0

	gw, err := volume.MakeGrid(src.Dims(), [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := volume.FillBrick(src, gw.Bricks[0])
	if err != nil {
		t.Fatal(err)
	}
	spw := gw.Space
	g, err := volume.MakeGrid(src.Dims(), [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var bricks []*volume.BrickData
	for _, b := range g.Bricks {
		bd, err := volume.FillBrick(src, b)
		if err != nil {
			t.Fatal(err)
		}
		bricks = append(bricks, bd)
	}
	r := rand.New(rand.NewSource(113))
	f := func() bool {
		px, py := r.Intn(40), r.Intn(40)
		mono, _ := CastPixelSlicing(cam, spw, whole, prm, px, py)
		var frags []composite.Fragment
		for _, bd := range bricks {
			fr, _ := CastPixelSlicing(cam, g.Space, bd, prm, px, py)
			if !fr.IsPlaceholder() {
				frags = append(frags, fr)
			}
		}
		bg := vec.V4{}
		got := composite.CompositePixel(frags, bg)
		var want vec.V4
		if mono.IsPlaceholder() {
			want = composite.Finalize(vec.V4{}, bg)
		} else {
			want = composite.Finalize(mono.Color(), bg)
		}
		const eps = 0.02
		return math.Abs(float64(got.X-want.X)) < eps &&
			math.Abs(float64(got.Y-want.Y)) < eps &&
			math.Abs(float64(got.Z-want.Z)) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
