package camera

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gvmr/internal/vec"
)

func mustCam(t *testing.T, eye, center vec.V3, w, h int) *Camera {
	t.Helper()
	c, err := New(eye, center, vec.New3(0, 1, 0), math.Pi/4, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	eye := vec.New3(0, 0, 5)
	ctr := vec.New3(0, 0, 0)
	up := vec.New3(0, 1, 0)
	if _, err := New(eye, ctr, up, math.Pi/4, 0, 100); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(eye, ctr, up, 0, 100, 100); err == nil {
		t.Error("zero fov accepted")
	}
	if _, err := New(eye, eye, up, math.Pi/4, 100, 100); err == nil {
		t.Error("eye == center accepted")
	}
	if _, err := New(eye, ctr, vec.New3(0, 0, 1), math.Pi/4, 100, 100); err == nil {
		t.Error("up parallel to view accepted")
	}
}

func TestCenterPixelRay(t *testing.T) {
	c := mustCam(t, vec.New3(0, 0, 5), vec.New3(0, 0, 0), 101, 101)
	r := c.Ray(50, 50) // center pixel of an odd image: straight ahead
	if r.Origin != c.Eye {
		t.Errorf("ray origin = %v", r.Origin)
	}
	want := vec.New3(0, 0, -1)
	if r.Dir.Sub(want).Len() > 1e-6 {
		t.Errorf("center ray dir = %v, want %v", r.Dir, want)
	}
}

func TestRayDirectionsSpanFov(t *testing.T) {
	c := mustCam(t, vec.New3(0, 0, 5), vec.New3(0, 0, 0), 100, 100)
	top := c.Ray(50, 0)
	bottom := c.Ray(50, 99)
	if top.Dir.Y <= 0 {
		t.Errorf("top ray should look up, dir=%v", top.Dir)
	}
	if bottom.Dir.Y >= 0 {
		t.Errorf("bottom ray should look down, dir=%v", bottom.Dir)
	}
	left := c.Ray(0, 50)
	if left.Dir.X >= 0 {
		t.Errorf("left ray should look left (-x), dir=%v", left.Dir)
	}
}

func TestDepthIsViewDistance(t *testing.T) {
	c := mustCam(t, vec.New3(0, 0, 5), vec.New3(0, 0, 0), 64, 64)
	if d := c.Depth(vec.New3(0, 0, 0)); math.Abs(float64(d)-5) > 1e-6 {
		t.Errorf("Depth(origin) = %v, want 5", d)
	}
	if d := c.Depth(vec.New3(0, 0, 7)); d >= 0 {
		t.Errorf("Depth(point behind eye) = %v, want negative", d)
	}
	// Depth is measured along the view axis, not Euclidean distance.
	if d := c.Depth(vec.New3(3, 0, 0)); math.Abs(float64(d)-5) > 1e-6 {
		t.Errorf("Depth(off-axis) = %v, want 5", d)
	}
}

func TestProjectAABBCenteredBox(t *testing.T) {
	c := mustCam(t, vec.New3(0, 0, 5), vec.New3(0, 0, 0), 128, 128)
	box := vec.AABB{Min: vec.New3(-0.5, -0.5, -0.5), Max: vec.New3(0.5, 0.5, 0.5)}
	fp, ok := c.ProjectAABB(box)
	if !ok {
		t.Fatal("centered box reported off screen")
	}
	// Footprint should be roughly centered and not cover the whole image.
	if fp.X0 <= 0 || fp.X1 >= 127 || fp.Y0 <= 0 || fp.Y1 >= 127 {
		t.Errorf("footprint %+v should be interior", fp)
	}
	cx := (fp.X0 + fp.X1) / 2
	cy := (fp.Y0 + fp.Y1) / 2
	if cx < 60 || cx > 68 || cy < 60 || cy > 68 {
		t.Errorf("footprint center (%d,%d) not near image center", cx, cy)
	}
}

func TestProjectAABBOffScreen(t *testing.T) {
	c := mustCam(t, vec.New3(0, 0, 5), vec.New3(0, 0, 0), 128, 128)
	// A box far to the right of the frustum.
	box := vec.AABB{Min: vec.New3(100, -0.5, -0.5), Max: vec.New3(101, 0.5, 0.5)}
	if _, ok := c.ProjectAABB(box); ok {
		t.Error("far off-axis box reported on screen")
	}
}

func TestProjectAABBBehindCameraConservative(t *testing.T) {
	c := mustCam(t, vec.New3(0, 0, 5), vec.New3(0, 0, 0), 128, 128)
	// Box straddling the eye plane: conservative full-image footprint.
	box := vec.AABB{Min: vec.New3(-1, -1, 4), Max: vec.New3(1, 1, 6)}
	fp, ok := c.ProjectAABB(box)
	if !ok {
		t.Fatal("straddling box reported off screen")
	}
	if fp != (Footprint{0, 0, 127, 127}) {
		t.Errorf("straddling box footprint = %+v, want full image", fp)
	}
}

func TestFootprintGeometry(t *testing.T) {
	fp := Footprint{X0: 2, Y0: 3, X1: 5, Y1: 7}
	if fp.Width() != 4 || fp.Height() != 5 || fp.Pixels() != 20 {
		t.Errorf("footprint geometry wrong: %d %d %d", fp.Width(), fp.Height(), fp.Pixels())
	}
}

func TestFitFramesBox(t *testing.T) {
	// The canonical volume shapes: a cube and the plume's tall box (in
	// the world space volume.NewSpace produces: max extent 1, centered).
	boxes := []vec.AABB{
		{Min: vec.New3(-0.5, -0.5, -0.5), Max: vec.New3(0.5, 0.5, 0.5)},
		{Min: vec.New3(-0.125, -0.125, -0.5), Max: vec.New3(0.125, 0.125, 0.5)},
	}
	for i, box := range boxes {
		c, err := Fit(box, 256, 256)
		if err != nil {
			t.Fatal(err)
		}
		fp, ok := c.ProjectAABB(box)
		if !ok {
			t.Fatalf("box %d: fit camera does not see the box", i)
		}
		// The whole box is on screen (no clamping at the borders).
		if fp.X0 == 0 || fp.Y0 == 0 || fp.X1 == 255 || fp.Y1 == 255 {
			t.Errorf("box %d: fit footprint %+v touches image border; box may be clipped", i, fp)
		}
		// And it fills a healthy portion of the frame — the paper's
		// figures frame volumes tightly and the footprint drives the
		// rendering workload.
		if fp.Pixels() < 256*256/4 {
			t.Errorf("box %d: fit footprint %+v too small", i, fp)
		}
	}
}

// Property: every ray through a pixel of the footprint of a box either hits
// the box or passes near its silhouette; conversely rays through pixels
// strictly outside the footprint never hit the box (footprint is
// conservative).
func TestFootprintConservativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	c := mustCam(t, vec.New3(0, 0, 3), vec.New3(0, 0, 0), 96, 96)
	f := func() bool {
		lo := vec.New3(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1)
		sz := vec.New3(r.Float64()*0.8+0.05, r.Float64()*0.8+0.05, r.Float64()*0.8+0.05)
		box := vec.AABB{Min: lo, Max: lo.Add(sz)}
		fp, ok := c.ProjectAABB(box)
		// Sample random pixels; any hit outside the footprint disproves
		// conservativeness.
		for i := 0; i < 40; i++ {
			px, py := r.Intn(96), r.Intn(96)
			ray := c.Ray(px, py)
			_, tf, hit := box.Intersect(ray)
			hit = hit && tf > 0
			if hit {
				if !ok {
					return false
				}
				if px < fp.X0 || px > fp.X1 || py < fp.Y0 || py > fp.Y1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
