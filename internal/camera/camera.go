// Package camera provides the perspective camera used by the ray caster:
// per-pixel ray generation, view-space depth (for fragment ordering), and
// screen-space footprint projection of brick bounding boxes (which sizes
// the CUDA-style kernel grids).
package camera

import (
	"fmt"
	"math"

	"gvmr/internal/vec"
)

// Camera is a perspective pinhole camera over a Width×Height pixel image.
type Camera struct {
	Eye    vec.V3
	Center vec.V3
	Up     vec.V3
	FovY   float64 // vertical field of view, radians
	Width  int
	Height int

	// Precomputed basis.
	right, up, fwd     vec.V3
	tanHalfY, tanHalfX float64
}

// New builds a camera and validates its parameters.
func New(eye, center, up vec.V3, fovY float64, width, height int) (*Camera, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("camera: invalid image size %dx%d", width, height)
	}
	if fovY <= 0 || fovY >= math.Pi {
		return nil, fmt.Errorf("camera: invalid fovY %v", fovY)
	}
	if center.Sub(eye).Len() == 0 {
		return nil, fmt.Errorf("camera: eye and center coincide")
	}
	c := &Camera{Eye: eye, Center: center, Up: up, FovY: fovY, Width: width, Height: height}
	c.fwd = center.Sub(eye).Norm()
	c.right = c.fwd.Cross(up.Norm()).Norm()
	if c.right.Len() == 0 {
		return nil, fmt.Errorf("camera: up vector parallel to view direction")
	}
	c.up = c.right.Cross(c.fwd)
	c.tanHalfY = math.Tan(fovY / 2)
	c.tanHalfX = c.tanHalfY * float64(width) / float64(height)
	return c, nil
}

// Fit positions a camera on a default three-quarter view that frames the
// world-space box b in a Width×Height image: the classic "show me the whole
// volume" view the paper's figures use.
func Fit(b vec.AABB, width, height int) (*Camera, error) {
	center := b.Center()
	radius := b.Size().Len() / 2
	if radius == 0 {
		radius = 1
	}
	fovY := math.Pi / 4
	// Distance so the bounding sphere fits the smaller half-angle, pulled
	// in so the volume fills most of the frame (the paper's figures frame
	// their volumes tightly; the footprint drives the rendering workload).
	tanHalf := math.Tan(fovY / 2)
	if width < height {
		tanHalf *= float64(width) / float64(height)
	}
	dist := (float64(radius)/tanHalf + float64(radius)) * 0.78
	dir := vec.New3(0.55, 0.35, 1).Norm()
	eye := center.Add(dir.Scale(float32(dist)))
	return New(eye, center, vec.New3(0, 1, 0), fovY, width, height)
}

// Pixels returns the number of image pixels.
func (c *Camera) Pixels() int { return c.Width * c.Height }

// Ray returns the world-space ray through the center of pixel (px, py),
// with px in [0,Width) and py in [0,Height); py grows downward.
func (c *Camera) Ray(px, py int) vec.Ray {
	u := (float64(px)+0.5)/float64(c.Width)*2 - 1  // [-1,1] left→right
	v := 1 - (float64(py)+0.5)/float64(c.Height)*2 // [1,-1] top→bottom
	dir := c.fwd.
		Add(c.right.Scale(float32(u * c.tanHalfX))).
		Add(c.up.Scale(float32(v * c.tanHalfY))).
		Norm()
	return vec.Ray{Origin: c.Eye, Dir: dir}
}

// Depth returns the distance from the eye to p along the viewing direction
// (view-space depth). Fragments for the same pixel sorted by this value
// composite front to back.
func (c *Camera) Depth(p vec.V3) float32 {
	return p.Sub(c.Eye).Dot(c.fwd)
}

// Footprint is an inclusive pixel rectangle.
type Footprint struct {
	X0, Y0, X1, Y1 int
}

// Width returns the footprint width in pixels.
func (f Footprint) Width() int { return f.X1 - f.X0 + 1 }

// Height returns the footprint height in pixels.
func (f Footprint) Height() int { return f.Y1 - f.Y0 + 1 }

// Pixels returns the footprint area in pixels.
func (f Footprint) Pixels() int { return f.Width() * f.Height() }

// project maps a world point to continuous pixel coordinates and view
// depth. Points behind the eye report ok=false.
func (c *Camera) project(p vec.V3) (x, y float64, depth float32, ok bool) {
	rel := p.Sub(c.Eye)
	zd := rel.Dot(c.fwd)
	if zd <= 1e-6 {
		return 0, 0, 0, false
	}
	u := float64(rel.Dot(c.right)) / (float64(zd) * c.tanHalfX)
	v := float64(rel.Dot(c.up)) / (float64(zd) * c.tanHalfY)
	x = (u + 1) / 2 * float64(c.Width)
	y = (1 - v) / 2 * float64(c.Height)
	return x, y, zd, true
}

// ProjectAABB returns the screen footprint of the world-space box b,
// clamped to the image, and ok=false when the box is entirely off screen
// (including entirely behind the eye). If the box straddles the eye plane
// — some corners in front, some behind — the footprint conservatively
// covers the whole image (matching what a clipping rasteriser would have
// to assume).
func (c *Camera) ProjectAABB(b vec.AABB) (Footprint, bool) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	behind := false
	for _, corner := range b.Corners() {
		x, y, _, ok := c.project(corner)
		if !ok {
			behind = true
			continue
		}
		minX = math.Min(minX, x)
		minY = math.Min(minY, y)
		maxX = math.Max(maxX, x)
		maxY = math.Max(maxY, y)
	}
	if math.IsInf(minX, 1) {
		// Every corner behind the eye: nothing visible.
		return Footprint{}, false
	}
	if behind {
		return Footprint{0, 0, c.Width - 1, c.Height - 1}, true
	}
	fp := Footprint{
		X0: int(math.Floor(minX)),
		Y0: int(math.Floor(minY)),
		X1: int(math.Ceil(maxX)),
		Y1: int(math.Ceil(maxY)),
	}
	if fp.X1 < 0 || fp.Y1 < 0 || fp.X0 >= c.Width || fp.Y0 >= c.Height {
		return Footprint{}, false
	}
	fp.X0 = max(fp.X0, 0)
	fp.Y0 = max(fp.Y0, 0)
	fp.X1 = min(fp.X1, c.Width-1)
	fp.Y1 = min(fp.Y1, c.Height-1)
	return fp, true
}
