package composite

import "unsafe"

// Fragments cross the wire as raw little-endian float bits in struct
// field order, and the list-aware cf2 codec additionally splits them
// into per-field byte planes. Both depend on FragmentBytes matching the
// in-memory struct exactly; this guard fails the build if Fragment ever
// grows, shrinks, or gains padding. The field offsets are checked in
// TestFragmentWireLayout so the plane order can't silently drift either.
var _ [FragmentBytes]byte = [unsafe.Sizeof(Fragment{})]byte{}
