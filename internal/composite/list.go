package composite

// FragmentList is a pixel's depth-ordered run of fragments: the
// generalisation of "one fragment per (brick, pixel)" that non-convex
// partitions need. A ray crossing a non-convex partition re-enters it
// once per connected span, so one (partition, pixel) cell carries N ≥ 0
// fragments — one per span — instead of exactly one. The compositing
// algebra is unchanged: surviving entry depths are strictly distinct
// per pixel (DESIGN.md §9/§12), so a depth-ordered list has exactly one
// valid order and every merge strategy below produces the same bytes as
// sorting the concatenation.
type FragmentList []Fragment

// MergeLists merges two depth-ordered lists of the same pixel into one
// depth-ordered list. The merge is stable in the sort.SliceStable sense:
// on equal depths, all of a precedes b — callers keep determinism by
// passing the lower partition (or brick) as a, mirroring the canonical
// ascending-order fold. Placeholders (NaN depth) sort after every real
// fragment on both sides, matching SortByDepth.
func MergeLists(a, b FragmentList) FragmentList {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(FragmentList, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if depthLess(b[j].Depth, a[i].Depth) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// depthLess is SortByDepth's comparator: ascending depth with NaN
// (placeholder) after every real value.
func depthLess(a, b float32) bool {
	if a != a {
		return false
	}
	if b != b {
		return true
	}
	return a < b
}
