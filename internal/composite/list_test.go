package composite

import (
	"math/rand"
	"testing"
	"unsafe"

	"gvmr/internal/vec"
)

// randomFragments builds n fragments for one pixel with strictly
// distinct depths (the invariant real renders guarantee — DESIGN.md §9),
// in shuffled order, with an optional placeholder mixed in.
func randomFragments(r *rand.Rand, key int32, n int, withPlaceholder bool) []Fragment {
	frags := make([]Fragment, 0, n+1)
	for i := 0; i < n; i++ {
		a := r.Float32()
		frags = append(frags, Fragment{
			Key:   key,
			R:     r.Float32() * a,
			G:     r.Float32() * a,
			B:     r.Float32() * a,
			A:     a,
			Depth: float32(i)*0.25 + r.Float32()*0.2, // distinct: gaps exceed jitter
		})
	}
	if withPlaceholder {
		frags = append(frags, Placeholder(key))
	}
	r.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	return frags
}

// The tentpole's pin: folding length-1 fragment lists through MergeLists
// reproduces today's CompositePixel fold bit for bit. This is what lets
// the existing goldens (every list has length 1 on convex partitions)
// certify the list refactor.
func TestMergeSingletonListsEqualsCompositePixel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	bg := vec.V4{X: 0.1, Y: 0.2, Z: 0.3, W: 1}
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(8)
		frags := randomFragments(r, int32(trial), n, r.Intn(3) == 0)

		want := CompositePixel(append([]Fragment(nil), frags...), bg)

		// Fold the same fragments as singleton lists. Merge order follows
		// the canonical ascending fold: each new singleton is the
		// higher-ordered operand, exactly like appending a later brick.
		var acc FragmentList
		for _, f := range frags {
			acc = MergeLists(acc, FragmentList{f})
		}
		got := CompositeSorted(acc, bg)
		if got != want {
			t.Fatalf("trial %d (%d frags): singleton-list fold %v != CompositePixel %v",
				trial, n, got, want)
		}
	}
}

// Merging depth-ordered lists in any grouping equals sorting the
// concatenation: the associativity the distributed pairwise merge and
// the exchange fold both lean on.
func TestMergeListsEqualsSortedConcat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		nLists := 1 + r.Intn(4)
		lists := make([]FragmentList, nLists)
		var concat []Fragment
		for i := range lists {
			l := FragmentList(randomFragments(r, 9, r.Intn(4), r.Intn(4) == 0))
			SortByDepth(l)
			lists[i] = l
			concat = append(concat, l...)
		}
		want := append([]Fragment(nil), concat...)
		SortByDepth(want)

		merged := lists[0]
		for _, l := range lists[1:] {
			merged = MergeLists(merged, l)
		}
		if len(merged) != len(want) {
			t.Fatalf("trial %d: merged %d frags, want %d", trial, len(merged), len(want))
		}
		for i := range want {
			// Compare on depth bits: equal depths only occur between
			// placeholders (both NaN), where order is immaterial to the fold.
			gd, wd := merged[i].Depth, want[i].Depth
			if gd != wd && !(gd != gd && wd != wd) {
				t.Fatalf("trial %d: position %d depth %v != %v", trial, i, gd, wd)
			}
		}
	}
}

func TestMergeListsStablePrefersFirst(t *testing.T) {
	a := FragmentList{{Key: 1, R: 1, Depth: 2}}
	b := FragmentList{{Key: 1, G: 1, Depth: 2}}
	m := MergeLists(a, b)
	if len(m) != 2 || m[0].R != 1 || m[1].G != 1 {
		t.Fatalf("equal-depth merge must keep a before b: %+v", m)
	}
	// Placeholders land after real fragments from either side.
	p := MergeLists(FragmentList{Placeholder(1)}, b)
	if len(p) != 2 || !p[1].IsPlaceholder() {
		t.Fatalf("placeholder must sort last: %+v", p)
	}
}

// Satellite guard: the wire layout the codecs assume — field order
// Key,R,G,B,A,Depth at 4-byte strides, no padding — is the struct's
// actual memory layout. The compile-time size check lives in layout.go;
// this pins the offsets.
func TestFragmentWireLayout(t *testing.T) {
	var f Fragment
	if got := unsafe.Sizeof(f); got != FragmentBytes {
		t.Fatalf("unsafe.Sizeof(Fragment{}) = %d, want %d", got, FragmentBytes)
	}
	offsets := map[string]uintptr{
		"Key":   unsafe.Offsetof(f.Key),
		"R":     unsafe.Offsetof(f.R),
		"G":     unsafe.Offsetof(f.G),
		"B":     unsafe.Offsetof(f.B),
		"A":     unsafe.Offsetof(f.A),
		"Depth": unsafe.Offsetof(f.Depth),
	}
	want := map[string]uintptr{"Key": 0, "R": 4, "G": 8, "B": 12, "A": 16, "Depth": 20}
	for name, off := range want {
		if offsets[name] != off {
			t.Errorf("Fragment.%s at offset %d, wire layout wants %d", name, offsets[name], off)
		}
	}
}
