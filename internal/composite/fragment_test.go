package composite

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gvmr/internal/vec"
)

func approx4(a, b vec.V4, eps float32) bool {
	d := func(x, y float32) bool {
		v := x - y
		if v < 0 {
			v = -v
		}
		return v <= eps
	}
	return d(a.X, b.X) && d(a.Y, b.Y) && d(a.Z, b.Z) && d(a.W, b.W)
}

func randFrag(r *rand.Rand, key int32) Fragment {
	a := float32(r.Float64())
	return Fragment{
		Key:   key,
		R:     float32(r.Float64()) * a, // premultiplied: channel <= alpha
		G:     float32(r.Float64()) * a,
		B:     float32(r.Float64()) * a,
		A:     a,
		Depth: float32(r.Float64() * 10),
	}
}

func TestPlaceholder(t *testing.T) {
	p := Placeholder(42)
	if p.Key != 42 {
		t.Errorf("key = %d", p.Key)
	}
	if !p.IsPlaceholder() {
		t.Error("placeholder not recognised")
	}
	if !math.IsNaN(float64(p.Depth)) {
		t.Errorf("placeholder depth = %v, want the NaN sentinel", p.Depth)
	}
	f := Fragment{A: 0.5}
	if f.IsPlaceholder() {
		t.Error("real fragment recognised as placeholder")
	}
}

// Regression: a genuine fully-transparent black fragment is NOT a
// placeholder — the sentinel is the NaN depth, not the color. Before the
// sentinel existed, IsPlaceholder classified any zero-color fragment as a
// placeholder, so such a fragment would have been dropped at partition
// time instead of surviving to the reducer.
func TestTransparentBlackFragmentIsNotPlaceholder(t *testing.T) {
	f := Fragment{Key: 9, Depth: 1.5} // zero color, real depth
	if f.IsPlaceholder() {
		t.Fatal("transparent-black fragment classified as placeholder")
	}
	// It must also survive compositing untouched: inserting it anywhere
	// leaves the pixel exactly as it was (the zero color is the identity
	// of Under), rather than being filtered out.
	bg := vec.V4{X: 0.2, Y: 0.4, Z: 0.6, W: 1}
	real := Fragment{Key: 9, R: 0.3, G: 0.2, B: 0.1, A: 0.4, Depth: 2}
	want := CompositePixel([]Fragment{real}, bg)
	got := CompositePixel([]Fragment{{Key: 9, Depth: 1.5}, real, {Key: 9, Depth: 3}}, bg)
	if got != want {
		t.Errorf("transparent-black fragment changed the composite: %v != %v", got, want)
	}
}

func TestUnderOpaqueFrontWins(t *testing.T) {
	front := vec.V4{X: 1, Y: 0, Z: 0, W: 1} // opaque red
	back := vec.V4{X: 0, Y: 1, Z: 0, W: 1}  // opaque green
	got := Under(front, back)
	if got != front {
		t.Errorf("opaque front should win, got %v", got)
	}
}

func TestUnderTransparentFrontPassesThrough(t *testing.T) {
	front := vec.V4{}
	back := vec.V4{X: 0, Y: 0.5, Z: 0, W: 0.5}
	got := Under(front, back)
	if got != back {
		t.Errorf("transparent front should pass back through, got %v", got)
	}
}

func TestUnderHalfAlpha(t *testing.T) {
	front := vec.V4{X: 0.5, Y: 0, Z: 0, W: 0.5} // premult half red
	back := vec.V4{X: 0, Y: 1, Z: 0, W: 1}      // opaque green
	got := Under(front, back)
	want := vec.V4{X: 0.5, Y: 0.5, Z: 0, W: 1}
	if !approx4(got, want, 1e-6) {
		t.Errorf("got %v, want %v", got, want)
	}
}

// Property: Under is associative — the algebraic fact that lets partial ray
// fragments be composited per brick and then merged (the whole point of
// the paper's map/reduce split).
func TestUnderAssociativityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	f := func() bool {
		a := randFrag(r, 0).Color()
		b := randFrag(r, 0).Color()
		c := randFrag(r, 0).Color()
		lhs := Under(Under(a, b), c)
		rhs := Under(a, Under(b, c))
		return approx4(lhs, rhs, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the zero color is the identity of Under on both sides.
func TestUnderIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	f := func() bool {
		a := randFrag(r, 0).Color()
		return approx4(Under(a, vec.V4{}), a, 1e-7) && approx4(Under(vec.V4{}, a), a, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortByDepth(t *testing.T) {
	frags := []Fragment{
		{Key: 1, Depth: 3},
		{Key: 2, Depth: 1},
		{Key: 3, Depth: 2},
	}
	SortByDepth(frags)
	for i := 1; i < len(frags); i++ {
		if frags[i].Depth < frags[i-1].Depth {
			t.Fatalf("not sorted: %v", frags)
		}
	}
	if frags[0].Key != 2 || frags[2].Key != 1 {
		t.Errorf("sorted order wrong: %v", frags)
	}
}

// Property: CompositePixel is invariant under permutation of its input —
// fragments from different GPUs arrive unsorted in any order and the sort
// must make the result canonical (with distinct depths).
func TestCompositeOrderInvarianceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	bg := vec.V4{X: 0.1, Y: 0.1, Z: 0.3, W: 1}
	f := func() bool {
		n := 1 + r.Intn(6)
		frags := make([]Fragment, n)
		for i := range frags {
			frags[i] = randFrag(r, 7)
			frags[i].Depth = float32(i) + float32(r.Float64())*0.5 // distinct
		}
		want := CompositePixel(append([]Fragment(nil), frags...), bg)
		for trial := 0; trial < 4; trial++ {
			shuf := append([]Fragment(nil), frags...)
			r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
			got := CompositePixel(shuf, bg)
			if !approx4(got, want, 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: inserting placeholders anywhere — including ahead of
// unsorted real fragments, where a naive comparator would let the NaN
// sentinel block the depth sort — never changes the composited result.
// The "later-discarded place holder" restriction is sound.
func TestPlaceholderNeutralProperty(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	bg := vec.V4{X: 0.2, Y: 0, Z: 0, W: 1}
	f := func() bool {
		n := r.Intn(5)
		frags := make([]Fragment, 0, n+2)
		for i := 0; i < n; i++ {
			fr := randFrag(r, 3)
			fr.Depth = float32(i)
			frags = append(frags, fr)
		}
		want := CompositePixel(append([]Fragment(nil), frags...), bg)
		ph := Placeholder(3)
		withPH := append([]Fragment{ph}, frags...)
		withPH = append(withPH, ph)
		r.Shuffle(len(withPH), func(i, j int) { withPH[i], withPH[j] = withPH[j], withPH[i] })
		got := CompositePixel(withPH, bg)
		return approx4(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompositeEmptyIsBackground(t *testing.T) {
	bg := vec.V4{X: 0.3, Y: 0.4, Z: 0.5, W: 1}
	got := CompositePixel(nil, bg)
	want := vec.V4{X: 0.3, Y: 0.4, Z: 0.5, W: 1}
	if !approx4(got, want, 1e-7) {
		t.Errorf("empty composite = %v, want background", got)
	}
}

func TestCompositeOpaqueFrontHidesBackground(t *testing.T) {
	bg := vec.V4{X: 1, Y: 1, Z: 1, W: 1}
	frags := []Fragment{{Key: 0, R: 0, G: 0, B: 1, A: 1, Depth: 1}}
	got := CompositePixel(frags, bg)
	want := vec.V4{X: 0, Y: 0, Z: 1, W: 1}
	if !approx4(got, want, 1e-6) {
		t.Errorf("got %v, want opaque blue", got)
	}
}

// Property: splitting a sorted fragment list at any point, compositing the
// two halves separately (without background) and merging the partial
// results equals compositing the whole list — the direct-send invariant.
func TestSplitMergeEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	bg := vec.V4{X: 0.05, Y: 0.05, Z: 0.05, W: 1}
	f := func() bool {
		n := 2 + r.Intn(6)
		frags := make([]Fragment, n)
		for i := range frags {
			frags[i] = randFrag(r, 0)
			frags[i].Depth = float32(i)
		}
		whole := CompositeSorted(frags, bg)
		cut := 1 + r.Intn(n-1)
		accA := vec.V4{}
		for _, fr := range frags[:cut] {
			accA = Under(accA, fr.Color())
		}
		accB := vec.V4{}
		for _, fr := range frags[cut:] {
			accB = Under(accB, fr.Color())
		}
		merged := Finalize(Under(accA, accB), bg)
		return approx4(whole, merged, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
