// Package composite implements ray fragments and the compositing algebra
// the paper's Reduce phase uses: per-pixel ascending-depth sort of partial
// ray results, front-to-back blending, and a final blend against the
// background. Fragment is the homogeneous 24-byte key-value pair the
// MapReduce restrictions in §3.1.1 require.
package composite

import (
	"math"
	"sort"

	"gvmr/internal/vec"
)

// Fragment is one partial ray result: the paper's key-value pair. The key
// is the pixel index (y*width + x); the value is the premultiplied RGBA
// contribution of the ray's traversal of one brick plus the entry depth
// used for compositing order. 24 bytes, fixed size for every emission.
type Fragment struct {
	Key   int32
	R     float32 // premultiplied by A
	G     float32
	B     float32
	A     float32
	Depth float32 // view-space depth at brick entry
}

// FragmentBytes is the modeled wire size of one fragment.
const FragmentBytes = 24

// placeholderDepth is the placeholder sentinel: a quiet NaN no real
// fragment can carry (entry depths come from finite ray/box arithmetic).
var placeholderDepth = float32(math.NaN())

// Placeholder returns the discarded-later fragment a GPU thread emits when
// its ray contributes nothing (§3.1.1: every thread must emit). The NaN
// depth is an explicit sentinel: being a placeholder is a statement about
// how the fragment was produced, not about its color, so a real fragment
// that happens to be fully transparent black is NOT a placeholder and
// survives partitioning and compositing like any other.
func Placeholder(key int32) Fragment {
	return Fragment{Key: key, Depth: placeholderDepth}
}

// IsPlaceholder reports whether f carries the placeholder sentinel.
func (f Fragment) IsPlaceholder() bool { return f.Depth != f.Depth }

// Color returns the fragment's premultiplied color as a V4.
func (f Fragment) Color() vec.V4 { return vec.V4{X: f.R, Y: f.G, Z: f.B, W: f.A} }

// Under composites the premultiplied color `back` underneath `front`
// (front-to-back accumulation): the fundamental operator of both the map
// kernel's in-brick accumulation and the reduce phase's fragment merge.
func Under(front, back vec.V4) vec.V4 {
	t := 1 - front.W
	return vec.V4{
		X: front.X + t*back.X,
		Y: front.Y + t*back.Y,
		Z: front.Z + t*back.Z,
		W: front.W + t*back.W,
	}
}

// SortByDepth orders fragments by ascending depth (stable, so equal-depth
// fragments keep emission order — determinism across runs). Placeholders
// (NaN depth) sort after every real fragment: NaN would otherwise defeat
// the comparator's ordering and could leave real fragments unsorted
// across a placeholder, breaking CompositePixel's promise that
// placeholders contribute nothing wherever they land.
func SortByDepth(frags []Fragment) {
	sort.SliceStable(frags, func(i, j int) bool {
		a, b := frags[i].Depth, frags[j].Depth
		if a != a { // i is a placeholder: never ahead of anything
			return false
		}
		if b != b { // j is a placeholder: every real depth precedes it
			return true
		}
		return a < b
	})
}

// CompositePixel sorts the pixel's fragments by ascending depth, folds
// them front to back, and blends the result over an opaque background,
// exactly as §3.2 describes the reduce. The input slice is sorted in
// place. Placeholders contribute nothing wherever they land.
func CompositePixel(frags []Fragment, background vec.V4) vec.V4 {
	SortByDepth(frags)
	return CompositeSorted(frags, background)
}

// CompositeSorted folds already-sorted fragments front to back and blends
// the background.
func CompositeSorted(frags []Fragment, background vec.V4) vec.V4 {
	acc := vec.V4{}
	for _, f := range frags {
		acc = Under(acc, f.Color())
	}
	return Finalize(acc, background)
}

// Finalize blends an accumulated premultiplied color over an opaque
// background and returns an opaque display color.
func Finalize(acc vec.V4, background vec.V4) vec.V4 {
	t := 1 - acc.W
	return vec.V4{
		X: acc.X + t*background.X,
		Y: acc.Y + t*background.Y,
		Z: acc.Z + t*background.Z,
		W: 1,
	}
}
