module gvmr

go 1.24
