// Command volgen writes a built-in synthetic dataset to a .gvmr volume
// file, for exercising the out-of-core (disk-streamed) rendering path.
//
// Usage:
//
//	volgen -dataset supernova -size 256 -o supernova256.gvmr
package main

import (
	"flag"
	"fmt"
	"log"

	"gvmr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("volgen: ")
	var (
		ds   = flag.String("dataset", "skull", "dataset (skull|supernova|plume)")
		size = flag.Int("size", 128, "cube edge (plume becomes (n/2)x(n/2)x2n)")
		out  = flag.String("o", "", "output .gvmr path (required)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("missing -o output path")
	}
	src, err := gvmr.Dataset(*ds, *size)
	if err != nil {
		log.Fatal(err)
	}
	if err := gvmr.WriteVolumeFile(*out, src); err != nil {
		log.Fatal(err)
	}
	d := src.Dims()
	fmt.Printf("wrote %s: %v, %.1f MiB\n", *out, d, float64(d.Bytes())/(1<<20))
}
