// Command volgen writes a built-in synthetic dataset to a .gvmr volume
// file, for exercising the out-of-core (disk-streamed) rendering path.
// The default output is the bricked v2 format the demand pager streams;
// -v1 writes the legacy flat format.
//
// Usage:
//
//	volgen -dataset supernova -size 256 -o supernova256.gvmr
//	volgen -dataset skull -size 512 -brick 64 -compress -o skull512.gvmr
package main

import (
	"flag"
	"fmt"
	"log"

	"gvmr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("volgen: ")
	var (
		ds       = flag.String("dataset", "skull", "dataset (skull|supernova|plume)")
		size     = flag.Int("size", 128, "cube edge (plume becomes (n/2)x(n/2)x2n)")
		out      = flag.String("o", "", "output .gvmr path (required)")
		v1       = flag.Bool("v1", false, "write the flat v1 format (no bricking, no demand paging)")
		brick    = flag.Int("brick", 0, "v2 brick edge in voxels (0 = default 32)")
		compress = flag.Bool("compress", false, "flate-compress each v2 brick payload")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("missing -o output path")
	}
	src, err := gvmr.Dataset(*ds, *size)
	if err != nil {
		log.Fatal(err)
	}
	if *v1 {
		if *brick != 0 || *compress {
			log.Fatal("-brick/-compress apply to the v2 format only")
		}
		err = gvmr.WriteVolumeFileV1(*out, src)
	} else {
		err = gvmr.WriteVolumeFileOpts(*out, src, gvmr.VolumeFileOptions{
			BrickEdge: *brick,
			Compress:  *compress,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	d := src.Dims()
	fmt.Printf("wrote %s: %v, %.1f MiB dense\n", *out, d, float64(d.Bytes())/(1<<20))
}
