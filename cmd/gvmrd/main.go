// Command gvmrd is the gvmr render daemon: it serves frames rendered on
// the simulated multi-GPU cluster over HTTP, with request coalescing, a
// bounded rendered-frame cache and admission-control backpressure (see
// internal/server and DESIGN.md §7).
//
// Usage:
//
//	gvmrd serve -addr :8421 -gpus 8 -render-workers 0 -queue 64
//	gvmrd serve -pprof                  # expose /debug/pprof/ profiling
//	gvmrd serve -accept-joins           # coordinator; workers join at runtime
//	gvmrd serve -join coord:8421        # worker; registers with a coordinator
//	gvmrd serve -workers h1:8421,h2:8421,h3:8421   # static coordinator
//	gvmrd loadtest -duration 10s -concurrency 16 -json BENCH_serve.json
//
// Endpoints:
//
//	GET  /render?dataset=skull&edge=64&size=256&orbit=30&shading=1&format=png
//	POST /map       (distributed map batches; every daemon is worker-capable)
//	POST /reduce, /reduce/collect   (worker-side reduce exchange; -dist-reduce)
//	POST /register, /heartbeat, /drain, /deregister   (membership; -accept-joins)
//	GET  /stats
//	GET  /healthz   (liveness: 200 while the process runs, even draining)
//	GET  /readyz    (readiness: 503 while draining or not registered)
//
// As a coordinator (-accept-joins, and/or static -workers host:port,…)
// every admitted /render fans its brick map-tasks out to the fleet's
// gvmrd workers over POST /map (consistent-hash placement, bounded
// retry with re-placement on node death, optional -hedge-after straggler
// hedging) and composites the returned fragment stripes locally. Served
// bits are identical to a single-process render — see DESIGN.md §9.
//
// Under overload the daemon sheds by priority class (interactive >
// batch > speculative; 429 + Retry-After), breaks circuits to failing
// workers, caps retry amplification with a budget, and — with
// -default-deadline / -allow-degraded — bounds every render end to end,
// optionally serving a coarser degraded frame on a miss. DESIGN.md §13.
//
// As a worker (-join coord:port) the daemon registers itself with the
// coordinator, advertises its capacity, heartbeats its load on the lease
// the coordinator assigns, and on SIGTERM drains (finish in-flight map
// batches, receive nothing new) before deregistering — see DESIGN.md §10.
//
// The loadtest subcommand hammers a service (its own in-process one by
// default, or -addr for a running daemon) with a zipf mix of repeated
// and unique cameras, verifies the coalescer, the frame cache and
// bit-identity against a direct render, and writes the machine-readable
// BENCH_serve.json record.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gvmr"

	"gvmr/internal/membership"
	"gvmr/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gvmrd: ")
	args := os.Args[1:]
	sub := "serve"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		sub, args = args[0], args[1:]
	}
	switch sub {
	case "serve":
		runServe(args)
	case "loadtest":
		runLoadtest(args)
	default:
		fmt.Fprintf(os.Stderr, "gvmrd: unknown subcommand %q (serve|loadtest)\n", sub)
		os.Exit(2)
	}
}

// serviceFlags registers the flags shared by serve and loadtest's
// self-hosted mode, returning a constructor.
func serviceFlags(fs *flag.FlagSet) func() (*server.Service, error) {
	var (
		gpus          = fs.Int("gpus", 4, "simulated cluster GPU count per render")
		renderWorkers = fs.Int("render-workers", 0, "concurrent renders (0 = GOMAXPROCS)")
		queue         = fs.Int("queue", 64, "admitted renders that may wait beyond the render workers (admission bound)")
		frameBytes    = fs.Int64("frame-bytes", 0, "frame cache budget in bytes (0 = GVMR_FRAME_BYTES or 256 MiB, -1 disables)")
		maxEdge       = fs.Int("max-edge", 512, "largest dataset cube edge a request may ask for")
		maxPixels     = fs.Int("max-pixels", 4096*4096, "largest image (width*height) a request may ask for")
		workerList    = fs.String("workers", "", "comma-separated gvmrd worker addresses (host:port,...); non-empty fans renders out as a distributed coordinator")
		hedgeAfter    = fs.Duration("hedge-after", 0, "duplicate a straggling map batch onto another worker after this delay (coordinator mode; 0 = off)")
		attemptTO     = fs.Duration("attempt-timeout", 0, "bound one map exchange with a worker (coordinator mode; 0 = 30s default)")
		distReduce    = fs.Bool("dist-reduce", false, "reduce on the worker fleet: mappers exchange stripes peer-to-peer and the coordinator collects near-final pixels (coordinator mode)")
		wireCompress  = fs.Bool("wire-compress", true, "negotiate columnar stripe compression on the map/reduce wire")
		acceptJoins   = fs.Bool("accept-joins", false, "accept dynamic worker joins (POST /register); coordinator mode with a live fleet")
		heartbeat     = fs.Duration("heartbeat", 2*time.Second, "lease heartbeat interval assigned to joining workers")
		leaseMisses   = fs.Int("lease-misses", 3, "missed heartbeats before a joined worker's lease expires and it is evicted")
		defDeadline   = fs.Duration("default-deadline", 0, "end-to-end deadline for renders that don't carry their own X-Gvmr-Deadline (0 = unbounded)")
		allowDegraded = fs.Bool("allow-degraded", false, "on a missed deadline, serve a coarser uncached frame (X-Gvmr-Degraded: 1) instead of 504")
	)
	var volumes volumeFlags
	fs.Var(&volumes, "volume", "register a .gvmr volume file as a dataset: name=path[@tf-preset] (repeatable; v2 files stream via the demand pager)")
	return func() (*server.Service, error) {
		for _, spec := range volumes {
			name, path, tf, err := parseVolumeFlag(spec)
			if err != nil {
				return nil, err
			}
			if err := gvmr.RegisterVolumeFile(name, path, tf); err != nil {
				return nil, err
			}
			log.Printf("registered volume %q from %s", name, path)
		}
		var addrs []string
		if *workerList != "" {
			for _, a := range strings.Split(*workerList, ",") {
				if a = strings.TrimSpace(a); a == "" {
					continue
				} else if _, err := strconv.Atoi(a); err == nil {
					// -workers used to be the render-concurrency count; a
					// bare integer here is almost certainly an old script,
					// not a worker named "8". Fail loudly at startup.
					return nil, fmt.Errorf(
						"-workers takes worker addresses (host:port,...); for concurrent renders use -render-workers %s", a)
				} else {
					addrs = append(addrs, a)
				}
			}
		}
		return server.New(server.Config{
			GPUs:            *gpus,
			Workers:         *renderWorkers,
			MaxQueue:        *queue,
			FrameCacheBytes: *frameBytes,
			MaxPixels:       *maxPixels,
			MaxEdge:         *maxEdge,
			WorkerAddrs:     addrs,
			HedgeAfter:      *hedgeAfter,
			AttemptTimeout:  *attemptTO,
			DistReduce:      *distReduce,
			NoWireCompress:  !*wireCompress,
			AcceptJoins:     *acceptJoins,
			HeartbeatEvery:  *heartbeat,
			LeaseMisses:     *leaseMisses,
			DefaultDeadline: *defDeadline,
			AllowDegraded:   *allowDegraded,
		})
	}
}

// volumeFlags collects repeated -volume name=path[@tf-preset] flags.
type volumeFlags []string

func (v *volumeFlags) String() string { return strings.Join(*v, ",") }
func (v *volumeFlags) Set(s string) error {
	*v = append(*v, s)
	return nil
}

// parseVolumeFlag splits one -volume value: name=path, optionally
// suffixed with @tf-preset (skull, supernova, plume, gray).
func parseVolumeFlag(s string) (name, path, tf string, err error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" || rest == "" {
		return "", "", "", fmt.Errorf("-volume wants name=path[@tf-preset], got %q", s)
	}
	path = rest
	if i := strings.LastIndex(rest, "@"); i >= 0 {
		path, tf = rest[:i], rest[i+1:]
	}
	if path == "" {
		return "", "", "", fmt.Errorf("-volume wants name=path[@tf-preset], got %q", s)
	}
	return name, path, tf, nil
}

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8421", "listen address")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	join := fs.String("join", "", "coordinator address to register with as a cluster worker (host:port)")
	advertise := fs.String("advertise", "", "address the coordinator should reach this worker at (default: derived from -addr)")
	mkService := serviceFlags(fs)
	_ = fs.Parse(args)

	svc, err := mkService()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	agent, err := startMembership(svc, ln, *join, *advertise)
	if err != nil {
		log.Fatal(err)
	}
	handler := svc.Handler()
	if *withPprof {
		// Profiling stays off the default mux and behind an explicit
		// flag: the daemon may face untrusted clients, and profiles leak
		// timing and memory internals. Perf investigations turn it on.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	hs := &http.Server{Handler: handler}
	st := svc.Stats()
	log.Printf("listening on %s (%d workers, queue %d, frame cache %d MiB)",
		ln.Addr(), st.Workers, st.QueueCapacity, st.Cache.Capacity>>20)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining...", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if agent != nil {
		// Self-drain first: once the coordinator acknowledges, no new map
		// batches arrive, so the local drain below only waits out work
		// already in flight.
		if err := agent.Drain(ctx); err != nil {
			log.Printf("membership drain: %v", err)
		}
	}
	if err := svc.Close(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if agent != nil {
		if err := agent.Deregister(ctx); err != nil {
			log.Printf("membership deregister: %v", err)
		}
		agent.Stop()
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained; bye")
}

// startMembership wires the worker side of dynamic membership when -join
// is set: an agent registers this daemon with the coordinator, heartbeats
// the service's load, and drives /readyz (a worker that lost its lease or
// is draining reports not-ready while staying live).
func startMembership(svc *server.Service, ln net.Listener, join, advertise string) (*membership.Agent, error) {
	if join == "" {
		return nil, nil
	}
	if advertise == "" {
		advertise = advertiseFromListener(ln)
	}
	st := svc.Stats()
	agent, err := membership.StartAgent(membership.AgentConfig{
		Coordinator: join,
		Advertise:   advertise,
		Capacity: membership.Capacity{
			DeviceWorkers: st.Workers,
			StagingBytes:  st.Staging.Capacity,
		},
		Load: svc.LoadSnapshot,
		Logf: log.Printf,
	})
	if err != nil {
		return nil, err
	}
	svc.SetReadinessProbe(func() (bool, string) {
		switch s := agent.State(); s {
		case membership.AgentRegistered:
			return true, ""
		default:
			return false, "membership: " + string(s)
		}
	})
	log.Printf("joining %s as %s", join, advertise)
	return agent, nil
}

// advertiseFromListener derives a reachable default advertise address
// from the bound listener: an unspecified host (":8421", "0.0.0.0") maps
// to 127.0.0.1 — right for single-machine clusters, which is what an
// unspecified bind plus no explicit -advertise implies.
func advertiseFromListener(ln net.Listener) string {
	host, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		return ln.Addr().String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
