package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/server"
	"gvmr/internal/transfer"
	"gvmr/internal/volume/dataset"
)

// serveBench is the machine-readable record loadtest writes to
// BENCH_serve.json: proof the serving stack works (coalescer renders
// once for a storm of duplicates, served bits match a direct render)
// plus sustained-load throughput and latency quantiles.
type serveBench struct {
	Config       serveBenchConfig `json:"config"`
	Coalesce     coalesceCheck    `json:"coalesce_check"`
	BitIdentical bool             `json:"bits_identical"`
	Load         loadPhase        `json:"load"`
	Service      server.Stats     `json:"service_stats"`
}

type serveBenchConfig struct {
	Target          string  `json:"target"` // "self" or the -addr URL
	DurationSeconds float64 `json:"duration_seconds"`
	Concurrency     int     `json:"concurrency"`
	Cameras         int     `json:"cameras"`
	ZipfS           float64 `json:"zipf_s"`
	Dataset         string  `json:"dataset"`
	Edge            int     `json:"edge"`
	ImageSize       int     `json:"image_size"`
	Shading         bool    `json:"shading"`
	GPUs            int     `json:"gpus"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
}

// coalesceCheck fires Concurrency identical requests at a cold camera;
// exactly one may render.
type coalesceCheck struct {
	Requests  int  `json:"requests"`
	Renders   int  `json:"renders"`
	Coalesced int  `json:"coalesced"`
	CacheHits int  `json:"cache_hits"`
	OK        bool `json:"ok"`
}

type loadPhase struct {
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Rejected429    int     `json:"rejected_429"`
	WallSeconds    float64 `json:"wall_seconds"`
	RPS            float64 `json:"rps"`
	ServedRender   int     `json:"served_render"`
	ServedCache    int     `json:"served_cache"`
	ServedCoalesce int     `json:"served_coalesced"`
	// Latency is client-observed, summarised by the same
	// server.SummarizeLatency the /stats endpoint uses.
	Latency server.LatencyStats `json:"latency"`
}

func runLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "", "base URL of a running daemon (empty: self-host in-process)")
		duration    = fs.Duration("duration", 10*time.Second, "sustained-load phase length")
		concurrency = fs.Int("concurrency", 16, "concurrent clients")
		cameras     = fs.Int("cameras", 64, "distinct camera angles in the zipf mix")
		zipfS       = fs.Float64("zipf", 1.2, "zipf skew (>1; hot cameras repeat, tail cameras are near-unique)")
		ds          = fs.String("dataset", dataset.Skull, "dataset to request")
		edge        = fs.Int("edge", 32, "dataset cube edge")
		size        = fs.Int("size", 128, "square image size")
		shading     = fs.Bool("shading", true, "request gradient shading")
		reqGPUs     = fs.Int("req-gpus", 2, "gpus= sent with every request (also used for the direct-render check)")
		jsonPath    = fs.String("json", "BENCH_serve.json", "output path for the record (empty: skip)")
	)
	mkService := serviceFlags(fs)
	_ = fs.Parse(args)

	base := *addr
	target := base
	if base == "" {
		svc, err := mkService()
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = http.Serve(ln, svc.Handler()) }()
		base = "http://" + ln.Addr().String()
		target = "self"
		log.Printf("self-hosting on %s", base)
	}
	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	bench := &serveBench{
		Config: serveBenchConfig{
			Target:          target,
			DurationSeconds: duration.Seconds(),
			Concurrency:     *concurrency,
			Cameras:         *cameras,
			ZipfS:           *zipfS,
			Dataset:         *ds,
			Edge:            *edge,
			ImageSize:       *size,
			Shading:         *shading,
			GPUs:            *reqGPUs,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			NumCPU:          runtime.NumCPU(),
		},
	}
	renderURL := func(orbit float64, format string) string {
		v := url.Values{}
		v.Set("dataset", *ds)
		v.Set("edge", fmt.Sprint(*edge))
		v.Set("size", fmt.Sprint(*size))
		v.Set("orbit", fmt.Sprintf("%.4f", orbit))
		v.Set("gpus", fmt.Sprint(*reqGPUs))
		v.Set("shading", fmt.Sprintf("%t", *shading))
		if format != "" {
			v.Set("format", format)
		}
		return base + "/render?" + v.Encode()
	}

	// Phase 1 — coalescer proof: a storm of identical requests for a cold
	// camera must render exactly once. The angle is negative (the zipf
	// grid never goes there) and unique per run, so reruns against the
	// same long-lived daemon don't find it warm in the frame cache.
	log.Printf("phase 1: %d concurrent duplicate requests (coalescer)...", *concurrency)
	// Seconds-of-day at 0.1 ms resolution (the %.4f the URL carries).
	coldOrbit := -(360 + float64(time.Now().UnixNano()%86_400_000_000_000)/1e9)
	coldURL := renderURL(coldOrbit, "")
	var (
		mu     sync.Mutex
		served = map[string]int{}
		wg     sync.WaitGroup
	)
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(coldURL)
			if err != nil {
				log.Printf("coalesce request: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			if resp.StatusCode == http.StatusOK {
				served[resp.Header.Get(server.HeaderServed)]++
			} else {
				served[fmt.Sprintf("http%d", resp.StatusCode)]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	bench.Coalesce = coalesceCheck{
		Requests:  *concurrency,
		Renders:   served[string(server.ViaRender)],
		Coalesced: served[string(server.ViaCoalesced)],
		CacheHits: served[string(server.ViaCache)],
	}
	bench.Coalesce.OK = bench.Coalesce.Renders == 1 &&
		bench.Coalesce.Renders+bench.Coalesce.Coalesced+bench.Coalesce.CacheHits == *concurrency
	log.Printf("phase 1: %d requests → %d rendered, %d coalesced, %d cache hits (ok=%v)",
		bench.Coalesce.Requests, bench.Coalesce.Renders, bench.Coalesce.Coalesced,
		bench.Coalesce.CacheHits, bench.Coalesce.OK)

	// Phase 2 — bit-identity: the served raw framebuffer must match a
	// direct in-process render of the same request, bit for bit.
	log.Printf("phase 2: served bits vs direct render...")
	identical, err := bitIdentityCheck(client, renderURL(33.25, "raw"), *ds, *edge, *size, 33.25, *reqGPUs, *shading)
	if err != nil {
		log.Fatalf("bit-identity check: %v", err)
	}
	bench.BitIdentical = identical
	log.Printf("phase 2: bits identical: %v", identical)

	// Phase 3 — sustained zipf load.
	log.Printf("phase 3: %v of zipf load, %d clients over %d cameras...",
		*duration, *concurrency, *cameras)
	bench.Load = sustainedLoad(client, renderURL, *duration, *concurrency, *cameras, *zipfS)
	log.Printf("phase 3: %d requests in %.1fs → %.1f req/s (p50 %.1f ms, p99 %.1f ms; %d rejected, %d errors)",
		bench.Load.Requests, bench.Load.WallSeconds, bench.Load.RPS,
		bench.Load.Latency.P50Ms, bench.Load.Latency.P99Ms, bench.Load.Rejected429, bench.Load.Errors)

	// Final service-side counters.
	if err := fetchStats(client, base, &bench.Service); err != nil {
		log.Printf("stats: %v", err)
	}
	if rs := bench.Service.Resilience; rs != nil {
		log.Printf("resilience: %d breaker opens, %d half-open probes, %d budget exhaustions, %d degraded frames, %d deadline aborts, sheds %v",
			rs.BreakerOpens, rs.HalfOpenProbes, rs.RetryBudgetExhausted,
			rs.DegradedFrames, rs.DeadlineAborts, rs.ShedsByClass)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonPath)
	}
	if !bench.Coalesce.OK || !bench.BitIdentical || bench.Load.Errors > 0 {
		log.Fatal("loadtest FAILED (see record above)")
	}
	log.Printf("loadtest OK")
}

// bitIdentityCheck fetches a raw framebuffer over HTTP and renders the
// same request directly through core.RenderOn, comparing exact bits.
func bitIdentityCheck(client *http.Client, rawURL, ds string, edge, size int, orbit float64, gpus int, shading bool) (bool, error) {
	resp, err := client.Get(rawURL)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	servedIm, err := img.DecodeRaw(resp.Body, size, size)
	if err != nil {
		return false, err
	}
	servedDigest := resp.Header.Get(server.HeaderDigest)

	src, err := dataset.New(ds, dataset.PaperDims(ds, edge))
	if err != nil {
		return false, err
	}
	tf, err := transfer.Preset(ds)
	if err != nil {
		return false, err
	}
	cam, err := core.OrbitCamera(src, size, size, orbit)
	if err != nil {
		return false, err
	}
	res, _, err := core.RenderOn(cluster.AC(gpus), core.Options{
		Source: src, TF: tf, Width: size, Height: size,
		Camera: cam, GPUs: gpus, Shading: shading,
	}, 0)
	if err != nil {
		return false, err
	}
	direct := res.Image.Digest()
	return servedIm.Digest() == direct && servedDigest == direct, nil
}

// sustainedLoad drives the zipf camera mix for the given duration and
// summarises client-observed latency and throughput.
func sustainedLoad(client *http.Client, renderURL func(float64, string) string,
	duration time.Duration, concurrency, cameras int, zipfS float64) loadPhase {
	deadline := time.Now().Add(duration)
	var mu sync.Mutex
	out := loadPhase{}
	var all []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(cameras-1))
			var lats []time.Duration
			requests, errors, rejected := 0, 0, 0
			via := map[string]int{}
			for time.Now().Before(deadline) {
				cam := int(zipf.Uint64())
				orbit := 360 * float64(cam) / float64(cameras)
				t0 := time.Now()
				resp, err := client.Get(renderURL(orbit, ""))
				if err != nil {
					errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					requests++
					lats = append(lats, time.Since(t0))
					via[resp.Header.Get(server.HeaderServed)]++
				case http.StatusTooManyRequests:
					rejected++
					time.Sleep(retryAfter(resp, 10*time.Millisecond))
				default:
					errors++
				}
			}
			mu.Lock()
			out.Requests += requests
			out.Errors += errors
			out.Rejected429 += rejected
			out.ServedRender += via[string(server.ViaRender)]
			out.ServedCache += via[string(server.ViaCache)]
			out.ServedCoalesce += via[string(server.ViaCoalesced)]
			all = append(all, lats...)
			mu.Unlock()
		}(int64(c + 1))
	}
	wg.Wait()
	out.WallSeconds = time.Since(start).Seconds()
	if out.WallSeconds > 0 {
		out.RPS = float64(out.Requests) / out.WallSeconds
	}
	out.Latency = server.SummarizeLatency(all, int64(len(all)))
	return out
}

// retryAfter honors a Retry-After header (delay-seconds form) on an
// overload response, bounded to keep a hostile or confused server from
// parking the client; fallback covers a missing or unparsable header.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return fallback
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return fallback
	}
	d := time.Duration(secs) * time.Second
	if max := 5 * time.Second; d > max {
		d = max
	}
	return d
}

func fetchStats(client *http.Client, base string, dst *server.Stats) error {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(dst)
}
