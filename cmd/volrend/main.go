// Command volrend renders one frame of a volume on the simulated
// multi-GPU cluster and prints the paper-style stage breakdown.
//
// Usage:
//
//	volrend -dataset skull -size 256 -gpus 8 -image 512 -o skull.png
//	volrend -file volume.gvmr -tf gray -gpus 4 -fromdisk -o out.png
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gvmr"
	"gvmr/internal/report"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("volrend: ")
	var (
		ds         = flag.String("dataset", "skull", "built-in dataset (skull|supernova|plume)")
		size       = flag.Int("size", 256, "volume cube edge for built-in datasets")
		file       = flag.String("file", "", "render a .gvmr volume file instead of a built-in dataset")
		tfName     = flag.String("tf", "", "transfer function preset (defaults to the dataset's)")
		gpus       = flag.Int("gpus", 8, "number of GPUs (4 per node)")
		imgSize    = flag.Int("image", 512, "square image size in pixels")
		out        = flag.String("o", "", "output PNG path")
		ppm        = flag.String("ppm", "", "output PPM path")
		fromDisk   = flag.Bool("fromdisk", false, "charge disk I/O per brick (out-of-core)")
		compositor = flag.String("compositor", "direct-send", "direct-send|binary-swap")
		sampler    = flag.String("sampler", "raycast", "raycast|slicing")
		bricks     = flag.Int("bricks-per-gpu", 1, "bricking factor")
		reduceGPU  = flag.Bool("reduce-on-gpu", false, "place sort+reduce on the GPU")
		dynamic    = flag.Bool("dynamic", false, "dynamic chunk scheduling")
		step       = flag.Float64("step", 1.0, "marching step in voxels")
		tracePath  = flag.String("trace", "", "write a chrome://tracing timeline JSON to this path")
		orbit      = flag.Float64("orbit", 0, "camera angle in degrees along the fitted orbit (gvmrd's camera parameterisation)")
		shading    = flag.Bool("shading", false, "gradient diffuse shading")
		digest     = flag.Bool("digest", false, "print the SHA-256 digest of the exact framebuffer bits (compare with gvmrd's X-Gvmr-Digest)")
	)
	flag.Parse()

	var src gvmr.Source
	var err error
	if *file != "" {
		fs, ferr := gvmr.OpenVolumeFile(*file)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer fs.Close()
		src = fs
		if *tfName == "" {
			*tfName = "gray"
		}
	} else {
		src, err = gvmr.Dataset(*ds, *size)
		if err != nil {
			log.Fatal(err)
		}
	}

	var tf *transfer.Func
	switch *tfName {
	case "":
		tf, err = gvmr.Preset(*ds)
	case "gray":
		tf = transfer.Gray()
	default:
		tf, err = gvmr.Preset(*tfName)
	}
	if err != nil {
		log.Fatal(err)
	}

	cl, err := gvmr.NewCluster(*gpus)
	if err != nil {
		log.Fatal(err)
	}
	opt := gvmr.Options{
		Source:       src,
		TF:           tf,
		Width:        *imgSize,
		Height:       *imgSize,
		GPUs:         *gpus,
		FromDisk:     *fromDisk,
		BricksPerGPU: *bricks,
		StepVoxels:   float32(*step),
		Shading:      *shading,
		Background:   vec.New4(0, 0, 0, 1),
	}
	if *orbit != 0 {
		cam, err := gvmr.OrbitCamera(src, *imgSize, *imgSize, *orbit)
		if err != nil {
			log.Fatal(err)
		}
		opt.Camera = cam
	}
	switch *compositor {
	case "direct-send":
	case "binary-swap":
		opt.Compositor = gvmr.BinarySwap
	default:
		log.Fatalf("unknown compositor %q", *compositor)
	}
	switch *sampler {
	case "raycast":
	case "slicing":
		opt.Sampler = gvmr.Slicing
	default:
		log.Fatalf("unknown sampler %q", *sampler)
	}
	if *reduceGPU {
		opt.ReduceOn = gvmr.OnGPU
		opt.SortOn = gvmr.OnGPU
	}
	if *dynamic {
		opt.Assign = gvmr.AssignDynamic
	}
	var traceLog *gvmr.TraceLog
	if *tracePath != "" {
		traceLog = gvmr.NewTraceLog()
		opt.Trace = traceLog
	}

	res, err := gvmr.Render(cl, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("volume      %v (%d bricks on %d GPUs)\n",
		src.Dims(), res.Grid.NumBricks(), res.GPUs)
	fmt.Printf("runtime     %v   (%.2f FPS, %.0f MVPS)\n",
		res.Runtime, res.FPS, res.VPSMillions)
	if res.SwapTime > 0 {
		fmt.Printf("swap phase  %v\n", res.SwapTime)
	}
	t := report.New("stage breakdown (mean per GPU)",
		"stage", "time(ms)")
	st := res.Stats.MeanStage
	t.Add("map", report.Ms(st.Map))
	t.Add("partition+io", report.Ms(st.PartitionIO))
	t.Add("sort", report.Ms(st.Sort))
	t.Add("reduce", report.Ms(st.Reduce))
	fmt.Println(t)
	fmt.Printf("fragments   %d emitted, %d on wire (%d messages, %.1f MiB)\n",
		res.Stats.TotalEmitted, res.Stats.TotalReceived, res.Stats.Messages,
		float64(res.Stats.BytesOnWire)/(1<<20))

	if *digest {
		fmt.Printf("digest      %s\n", res.Image.Digest())
	}
	if *out != "" {
		if err := res.Image.WritePNG(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *ppm != "" {
		if err := res.Image.WritePPM(*ppm); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *ppm)
	}
	if traceLog != nil {
		if err := traceLog.WriteChromeFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d spans; open in chrome://tracing)\n", *tracePath, traceLog.Len())
	}
	if *out == "" && *ppm == "" && !*digest {
		fmt.Fprintln(os.Stderr, "note: no -o/-ppm given, image discarded")
	}
}
