// Command benchsuite regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	benchsuite -scale paper all
//	benchsuite -scale quick fig3 fig4
//	benchsuite -out results fig2        # writes PNGs next to the tables
//	benchsuite -scale quick -json BENCH_fig2.json seqbench
//	benchsuite -noskip seqbench         # A/B the empty-space skipping
//	benchsuite -cpuprofile suite.pprof fig2
//
// Subcommands: fig2 fig3 fig4 efficiency sec63 micro baseline claims
// inoutcore ablation zerocopy seqbench distbench oocbench all
//
// The figure sweeps fan independent cells out across host cores through
// the internal/schedule worker pool; -serial opts out (tables are
// bit-identical either way). seqbench runs a multi-frame orbit of the
// Figure 2 skull dataset serially and in parallel, verifies the outputs
// match bit for bit, renders the orbit with empty-space skipping on and
// off (digests must match; skip-on must not be slower in virtual time),
// and emits the machine-readable record (-json path, default
// BENCH_fig2.json) that tracks the perf trajectory. -noskip disables the
// macrocell DDA in every timed render; -cpuprofile writes a pprof CPU
// profile of the run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"sync"

	"gvmr/internal/experiments"
	"gvmr/internal/volume"
)

// profileStop flushes the -cpuprofile output (no-op when profiling is
// off). Exits must run it explicitly: log.Fatal skips defers, and a
// profile is most valuable exactly when a regression guard trips.
var profileStop = func() {}

// fatal and fatalf flush the profile, then exit like log.Fatal(f).
func fatal(v ...any) {
	profileStop()
	log.Fatal(v...)
}

func fatalf(format string, v ...any) {
	profileStop()
	log.Fatalf(format, v...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsuite: ")
	var (
		scaleName  = flag.String("scale", "paper", "experiment scale: paper|quick")
		outDir     = flag.String("out", "", "directory for rendered PNGs (fig2)")
		serial     = flag.Bool("serial", false, "run sweep cells one at a time (scheduler opt-out)")
		workers    = flag.Int("workers", 0, "scheduler pool width for sweeps (0 = GOMAXPROCS)")
		jsonPath   = flag.String("json", "BENCH_fig2.json", "output path for the seqbench record")
		frames     = flag.Int("frames", 8, "frames in the seqbench orbit")
		noSkip     = flag.Bool("noskip", false, "disable macrocell empty-space skipping (A/B the acceleration structure)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path (perf work starts from profiles, not guesses)")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		var once sync.Once
		profileStop = func() {
			once.Do(func() {
				pprof.StopCPUProfile()
				f.Close()
			})
		}
		defer profileStop()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	var sc experiments.Scale
	switch *scaleName {
	case "paper":
		sc = experiments.Paper()
	case "quick":
		sc = experiments.Quick()
	default:
		fatalf("unknown scale %q", *scaleName)
	}
	sc.Serial = *serial
	sc.Workers = *workers
	sc.NoSkip = *noSkip

	cmds := flag.Args()
	if len(cmds) == 0 {
		cmds = []string{"all"}
	}
	known := map[string]bool{
		"all": true, "fig2": true, "fig3": true, "fig4": true,
		"efficiency": true, "sec63": true, "micro": true, "baseline": true,
		"claims": true, "inoutcore": true, "ablation": true, "zerocopy": true,
		"seqbench": true, "distbench": true, "oocbench": true,
	}
	want := map[string]bool{}
	for _, c := range cmds {
		if !known[c] {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown subcommand %q\n", c)
			profileStop()
			os.Exit(2)
		}
		want[c] = true
	}
	all := want["all"]
	need := func(name string) bool { return all || want[name] }

	fmt.Printf("== gvmr benchsuite — scale %q ==\n\n", sc.Name)

	var sweep []experiments.SweepRow
	ensureSweep := func() []experiments.SweepRow {
		if sweep == nil {
			log.Printf("running scaling sweep (%v volumes × %v GPUs)...", sc.Edges, sc.GPUCounts)
			var err error
			sweep, err = experiments.Sweep(sc)
			if err != nil {
				fatal(err)
			}
		}
		return sweep
	}

	if need("fig2") {
		t, err := experiments.Fig2(sc, *outDir)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if need("fig3") {
		fmt.Println(experiments.Fig3(ensureSweep()))
	}
	if need("fig4") {
		fps, vps := experiments.Fig4(ensureSweep())
		fmt.Println(fps)
		fmt.Println(vps)
	}
	if need("efficiency") {
		fmt.Println(experiments.Efficiency(ensureSweep()))
	}
	if need("sec63") {
		_, t, err := experiments.Sec63(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if need("micro") {
		t, err := experiments.Micro()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if need("baseline") {
		t, err := experiments.BaselineCmp(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if need("claims") {
		fmt.Println(experiments.ClaimsReport(sc, ensureSweep()))
	}
	if need("inoutcore") {
		t, err := experiments.InOutOfCore(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if need("ablation") {
		t, err := experiments.Ablations(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if need("zerocopy") {
		fmt.Println(experiments.ZeroCopy(sc))
	}
	if want["seqbench"] {
		// Not part of "all": it is a wall-clock A/B of the frame
		// scheduler, not a paper table.
		log.Printf("seqbench: %d-frame orbit, %s scale, serial then parallel...", *frames, sc.Name)
		b, err := experiments.RunSeqBench(sc, *frames)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("seqbench: serial %.2fs, parallel %.2fs (%d workers) → %.2fx wall speedup, bit-identical: %v\n",
			b.Serial.WallSeconds, b.Parallel.WallSeconds, b.Parallel.Workers,
			b.SpeedupWall, b.BitIdentical)
		fmt.Printf("seqbench: empty-space skip: %.1f%% fewer samples (%d skipped), virtual %.2fs → %.2fs (%.2fx), bit-identical: %v\n",
			100*b.Skip.SampleReduction, b.Skip.On.SamplesSkipped,
			b.Skip.Off.VirtualSeconds, b.Skip.On.VirtualSeconds,
			b.Skip.SpeedupVirtual, b.Skip.BitIdentical)
		if !b.BitIdentical {
			fatal("seqbench: parallel output diverged from serial — determinism bug")
		}
		if !b.Skip.BitIdentical {
			fatal("seqbench: empty-space skipping changed the image — conservativeness bug")
		}
		if b.Skip.SpeedupVirtual < 1 {
			fatalf("seqbench: skip-on virtual time is slower than skip-off (%.3fx) — acceleration regression",
				b.Skip.SpeedupVirtual)
		}
		if *jsonPath != "" {
			if err := b.WriteJSON(*jsonPath); err != nil {
				fatal(err)
			}
			fmt.Printf("seqbench: wrote %s\n", *jsonPath)
		}
	}
	if want["distbench"] {
		// Not part of "all": it measures the distributed render cluster
		// (in-process HTTP workers), not a paper table.
		log.Printf("distbench: %d-frame orbit, classic 1/2/4 workers + raw-wire A/B + distributed reduce 2/4, %s scale...", *frames, sc.Name)
		b, err := experiments.RunDistBench(sc, *frames)
		if err != nil {
			fatal(err)
		}
		frameCount := int64(b.Config.Frames)
		for _, leg := range b.Legs {
			fmt.Printf("distbench: %-7s %d worker(s): virtual %.3fs (map %.3fs, wire %.3fs, reduce %.3fs), wall %.2fs, wire %d B/frame\n",
				leg.Mode, leg.Workers, leg.VirtualSeconds, leg.MapSeconds, leg.WireSeconds, leg.ReduceSeconds,
				leg.WallSeconds, leg.WireBytes/frameCount)
		}
		fmt.Printf("distbench: map-phase virtual speedup 1→2 workers %.2fx, 2→4 workers %.2fx; end-to-end 1→4 (reduce) %.2fx; wire compression %.2fx; coordinator overhead %.2fx wall, %.1f%% virtual; bit-identical: %v\n",
			b.SpeedupVirtual1to2, b.SpeedupVirtual2to4, b.SpeedupVirtual1to4,
			b.WireCompressionRatio,
			b.CoordinatorOverheadWall, 100*b.CoordinatorOverheadVirtual, b.BitIdentical)
		if !b.BitIdentical {
			fatal("distbench: distributed output diverged from the direct render — determinism bug")
		}
		if v1, v2 := b.Leg("classic", 1).VirtualSeconds, b.Leg("classic", 2).VirtualSeconds; v2 > v1 {
			fatalf("distbench: 2-worker virtual time %.3fs regressed past 1-worker %.3fs — distribution must not slow the job down",
				v2, v1)
		}
		// The compression-ratio and scaling floors are claims about the
		// paper-scale workload; quick-scale frames are small enough to be
		// fixed-overhead-dominated and would trip them spuriously.
		if sc.Name == "paper" {
			if b.WireCompressionRatio < 2 {
				fatalf("distbench: columnar wire compression %.2fx < 2x — wire encoding regression",
					b.WireCompressionRatio)
			}
			if b.SpeedupVirtual1to4 < 1.25 {
				fatalf("distbench: end-to-end 1→4-worker virtual speedup %.2fx ≤ the 1.25x floor — cluster scaling regression",
					b.SpeedupVirtual1to4)
			}
		}
		path := *jsonPath
		if path == "BENCH_fig2.json" {
			path = "BENCH_cluster.json" // distbench's own record, unless -json overrides
		}
		if path != "" {
			if err := b.WriteJSON(path); err != nil {
				fatal(err)
			}
			fmt.Printf("distbench: wrote %s\n", path)
		}
	}

	if want["oocbench"] {
		// Not part of "all": it is a wall-clock A/B of the demand pager
		// against the in-RAM staging path, not a paper table.
		log.Printf("oocbench: %d-frame orbit, %s scale, in-RAM then demand-paged from a bricked v2 file...", *frames, sc.Name)
		b, err := experiments.RunOocBench(sc, *frames)
		if err != nil {
			fatal(err)
		}
		fmt.Println(b)
		if !b.BitIdentical {
			fatal("oocbench: paged output diverged from the in-RAM render — paging correctness bug")
		}
		// Virtual time is ~1x, not exactly 1x: copy-backed bricks anchor
		// their macrocell grids at the ghost origin, so the modeled skip
		// traversal shifts slightly (pixels are exact — see BitIdentical).
		if b.VirtualRatio < 0.97 || b.VirtualRatio > 1.03 {
			fatalf("oocbench: paged virtual time ratio %.6f outside [0.97, 1.03] — paging leaked into the simulation", b.VirtualRatio)
		}
		if b.CacheEvictions == 0 || b.Pager.Reloads == 0 {
			fatalf("oocbench: evictions=%d reloads=%d — the staging budget did not force streaming",
				b.CacheEvictions, b.Pager.Reloads)
		}
		if !b.Sparse.BitIdentical {
			fatal("oocbench: sparse paged output diverged from the in-RAM render — brick skipping changed pixels")
		}
		if b.Sparse.SkippedBricks == 0 {
			fatal("oocbench: sparse volume skipped no render bricks — directory min/max skipping regression")
		}
		path := *jsonPath
		if path == "BENCH_fig2.json" {
			path = "BENCH_ooc.json" // oocbench's own record, unless -json overrides
		}
		if path != "" {
			if err := b.WriteJSON(path); err != nil {
				fatal(err)
			}
			fmt.Printf("oocbench: wrote %s\n", path)
		}
	}

	// The sweep and the figure renders share dataset synthesis through the
	// process-wide staging cache; show how much re-synthesis it absorbed.
	st := volume.Cache.Stats()
	fmt.Printf("staging cache: %d materialisations, %d cached stages, %d evictions, %.2f GiB in use (cap %.0f GiB)\n",
		st.Materialisations, st.Hits, st.Evictions,
		float64(st.BytesInUse)/(1<<30), float64(st.Capacity)/(1<<30))
}
