// Package gvmr is the public API of the multi-GPU MapReduce volume
// renderer: a Go reproduction of "Multi-GPU Volume Rendering using
// MapReduce" (Stuart, Chen, Ma, Owens — HPDC/MAPREDUCE 2010).
//
// Because Go has no CUDA ecosystem, the GPUs, PCIe links, InfiniBand
// network and disks are deterministic discrete-event models calibrated
// against the paper's measured costs, while every algorithm — ray
// casting, partitioning, counting sort, compositing — runs for real and
// produces real images. See DESIGN.md for the substitution argument and
// the spec/instance split; cmd/benchsuite regenerates the
// paper-vs-measured tables.
//
// Quickstart:
//
//	cl, _ := gvmr.NewCluster(8)
//	src, _ := gvmr.Dataset("skull", 256)
//	tf, _ := gvmr.Preset("skull")
//	res, _ := gvmr.Render(cl, gvmr.Options{
//		Source: src, TF: tf, Width: 512, Height: 512,
//	})
//	res.Image.WritePNG("skull.png")
//	fmt.Println(res.Runtime, res.FPS, res.VPSMillions)
package gvmr

import (
	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/sim"
	"gvmr/internal/trace"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// Re-exported renderer types. Options configures a render; Result carries
// the image, timings and MapReduce statistics.
type (
	Options = core.Options
	Result  = core.Result
	Cluster = cluster.Cluster
	Source  = volume.Source
	Dims    = volume.Dims
	Image   = img.Image
	Camera  = camera.Camera
	Time    = sim.Time
)

// Partition groups bricks into map units (Options.Partition). nil is the
// paper's convex regime: one unit per brick, at most one fragment per
// (unit, pixel). A non-nil Partition may be non-convex — a ray can
// re-enter a unit, and each (unit, pixel) cell carries a depth-ordered
// fragment list — yet the rendered bits are identical to the convex
// default (DESIGN.md §12). Interleaved is the adversarial builtin: a 3D
// checkerboard by grid-index parity, the worst case for re-entry.
type (
	Partition   = core.Partition
	Interleaved = core.Interleaved
	// Brick and BrickGrid are the volume bricking a Partition assigns
	// over: Brick.Index is the brick's integer grid coordinate, and
	// BrickGrid.Counts the per-axis brick counts.
	Brick     = volume.Brick
	BrickGrid = volume.Grid
)

// RegisterPartition registers a named partition scheme so HTTP requests
// and distributed job specs can address it as "scheme:parts". Scheme
// names are part of the coordinator/worker wire contract; registering a
// taken name panics.
func RegisterPartition(scheme string, build func(parts int) (Partition, error)) {
	core.RegisterPartition(scheme, build)
}

// BuildPartition constructs a registered partition scheme with the given
// unit count (parts in [2, 4096]; the convex default is a nil Partition).
func BuildPartition(scheme string, parts int) (Partition, error) {
	return core.BuildPartition(scheme, parts)
}

// PartitionSchemes lists the registered partition scheme names, sorted.
func PartitionSchemes() []string { return core.PartitionSchemes() }

// Compositor and sampler choices (§6.1 pluggability).
const (
	DirectSend = core.DirectSend
	BinarySwap = core.BinarySwap
	RayCast    = core.RayCast
	Slicing    = core.Slicing
)

// Reduce/sort placement and chunk assignment (§3.1.2 design choices).
const (
	OnCPU         = mapreduce.OnCPU
	OnGPU         = mapreduce.OnGPU
	AssignStatic  = mapreduce.AssignStatic
	AssignDynamic = mapreduce.AssignDynamic
)

// NewCluster builds a simulated Accelerator-Cluster-style machine with the
// given total GPU count (4 GPUs per node, as on the paper's testbed).
func NewCluster(gpus int) (*Cluster, error) {
	return cluster.New(sim.NewEnv(), cluster.AC(gpus))
}

// NewClusterParams builds a cluster from explicit hardware parameters.
func NewClusterParams(p cluster.Params) (*Cluster, error) {
	return cluster.New(sim.NewEnv(), p)
}

// ACParams returns the calibrated Accelerator Cluster hardware model for
// the given GPU count, for callers that want to tweak constants.
func ACParams(gpus int) cluster.Params { return cluster.AC(gpus) }

// Render renders one frame and returns the image plus full statistics.
func Render(cl *Cluster, opt Options) (*Result, error) {
	return core.Render(cl, opt)
}

// SequenceResult summarises a multi-frame animation render.
type SequenceResult = core.SequenceResult

// RenderSequence renders an orbiting animation of `frames` frames and
// reports the sustained frame rate (§4.2's interactivity figure of
// merit). Frames are independent simulations, so by default they render
// concurrently across host cores, each on a fresh instance of the
// cluster's spec; images, per-frame virtual times and aggregated
// statistics are bit-identical to serial execution
// (Options.SequenceSerial opts out).
func RenderSequence(cl *Cluster, opt Options, frames int, orbitDegrees float64) (*SequenceResult, error) {
	return core.RenderSequence(cl, opt, frames, orbitDegrees)
}

// Frame is one delivered frame of RenderAsync: the full Result plus the
// frame's virtual duration, or Err if the frame failed.
type Frame = core.Frame

// OrbitCameras builds `frames` cameras orbiting the source's fitted
// default view by orbitDegrees in total — the camera path RenderSequence
// renders, exposed so RenderFrames/RenderAsync can consume or modify it.
// A partial orbit reaches its endpoint (the last camera sits at exactly
// orbitDegrees); a full-turn orbit spaces frames orbit/frames apart so
// the wrap frame doesn't duplicate frame zero; a single frame is the
// fitted base view (use OrbitCamera for one frame at a given angle).
func OrbitCameras(src Source, width, height, frames int, orbitDegrees float64) ([]*Camera, error) {
	return core.OrbitCameras(src, width, height, frames, orbitDegrees)
}

// OrbitCamera builds the single camera `degrees` along the fitted orbit —
// the view a render-service request addresses.
func OrbitCamera(src Source, width, height int, degrees float64) (*Camera, error) {
	return core.OrbitCamera(src, width, height, degrees)
}

// RenderFrames renders one frame per camera — an animation path, a
// parameter sweep's views, a stereo pair — concurrently across host
// cores, each frame on a fresh instance of the cluster's spec, and
// returns the results in camera order. Output is bit-identical to
// rendering the cameras one at a time; the cluster's virtual clock
// advances by the summed frame durations, as a serial session would.
func RenderFrames(cl *Cluster, opt Options, cams []*Camera) ([]*Result, error) {
	return core.RenderFrames(cl, opt, cams)
}

// RenderAsync renders one frame per camera concurrently and returns a
// stream that delivers the frames in camera order, each as soon as it
// and its predecessors are done — drive a UI or an encoder while later
// frames still render. A failed frame arrives in-stream with Err set;
// the channel closes after the last frame. The stream applies
// backpressure (rendering runs only a small window ahead of the
// consumer); a consumer that stops reading early MUST call the returned
// stop function to release the render workers (`defer stop()` is safe —
// it is a no-op after completion).
func RenderAsync(cl *Cluster, opt Options, cams []*Camera) (<-chan Frame, func(), error) {
	return core.RenderFramesAsync(cl, opt, cams)
}

// TraceLog collects per-operation activity spans; attach one to
// Options.Trace and export it with WriteChromeFile for a chrome://tracing
// timeline of the overlap between kernels, transfers and network sends.
type TraceLog = trace.Log

// NewTraceLog returns an empty span log.
func NewTraceLog() *TraceLog { return &trace.Log{} }

// Dataset returns one of the built-in synthetic datasets (skull,
// supernova, plume) at cube edge n (plume becomes (n/2)×(n/2)×2n, the
// paper's aspect).
func Dataset(name string, n int) (Source, error) {
	return dataset.New(name, dataset.PaperDims(name, n))
}

// DatasetDims returns a built-in dataset at explicit dimensions.
func DatasetDims(name string, d Dims) (Source, error) {
	return dataset.New(name, d)
}

// DatasetNames lists the built-in datasets.
func DatasetNames() []string { return dataset.Names() }

// TransferFunc is a sampled transfer function (Options.TF) — what Preset
// and TransferFromPoints return.
type TransferFunc = transfer.Func

// Preset returns the transfer function paired with a built-in dataset.
func Preset(name string) (*transfer.Func, error) { return transfer.Preset(name) }

// TransferFromPoints builds a custom piecewise-linear transfer function
// from (scalar, RGBA) control points.
func TransferFromPoints(points []transfer.Point, size int) (*transfer.Func, error) {
	return transfer.FromPoints(points, size)
}

// RGBA builds a color (straight alpha) for transfer-function control
// points and backgrounds.
func RGBA(r, g, b, a float64) vec.V4 { return vec.New4(r, g, b, a) }

// Cube returns n×n×n dims.
func Cube(n int) Dims { return volume.Cube(n) }

// FitCamera frames a source's volume in a width×height image from the
// default three-quarter view.
func FitCamera(src Source, width, height int) (*Camera, error) {
	return camera.Fit(volume.NewSpace(src.Dims()).Bounds(), width, height)
}

// NewCamera builds an explicit perspective camera.
func NewCamera(eye, center, up vec.V3, fovY float64, width, height int) (*Camera, error) {
	return camera.New(eye, center, up, fovY, width, height)
}

// V3 builds a vector for camera placement.
func V3(x, y, z float64) vec.V3 { return vec.New3(x, y, z) }

// VolumeFileOptions configures WriteVolumeFileOpts: the target brick edge
// (default 32) and optional per-brick flate compression of the bricked v2
// format.
type VolumeFileOptions = volume.V2Options

// VolumeFile is an open .gvmr volume file source; close it when done.
// Bricked (v2) files are returned as a *volume.PagedSource whose Stats
// method reports demand-paging activity.
type VolumeFile = volume.VolumeFile

// PagerStats is a snapshot of a paged volume file's streaming activity
// (brick reads, bytes, evict-driven reloads, min/max skip counts).
type PagerStats = volume.PagerStats

// WriteVolumeFile streams a source to a bricked (v2) .gvmr volume file
// with default options — the on-disk format the out-of-core demand pager
// reads. Use WriteVolumeFileOpts to pick the brick size or enable
// compression, WriteVolumeFileV1 for the legacy flat format.
func WriteVolumeFile(path string, src Source) error {
	return volume.WriteFileV2(path, src, volume.V2Options{})
}

// WriteVolumeFileOpts streams a source to a bricked (v2) .gvmr volume
// file with explicit options.
func WriteVolumeFileOpts(path string, src Source, opts VolumeFileOptions) error {
	return volume.WriteFileV2(path, src, opts)
}

// WriteVolumeFileV1 streams a source to a flat (v1) .gvmr volume file:
// one raw little-endian float32 array, no bricking, no demand paging.
func WriteVolumeFileV1(path string, src Source) error {
	return volume.WriteFile(path, src)
}

// OpenVolumeFile opens a .gvmr volume file (either version) as a
// streaming source. Bricked v2 files stage individual bricks through the
// process-wide staging cache on demand, so rendering never needs the
// whole volume in memory. Close it when done.
func OpenVolumeFile(path string) (VolumeFile, error) {
	return volume.OpenVolume(path)
}

// RegisterVolumeFile opens a .gvmr volume file and registers it as a
// dataset name usable everywhere a built-in dataset name is: HTTP render
// requests, distributed job specs, Dataset/DatasetNames. tfPreset names
// the transfer function to render it with ("" = neutral gray ramp).
func RegisterVolumeFile(name, path, tfPreset string) error {
	return dataset.RegisterVolumeFile(name, path, tfPreset)
}

// WrapVolume exposes an in-memory volume as a source.
func WrapVolume(v *volume.Volume, tag string) Source {
	return volume.NewVolumeSource(v, tag)
}

// StagingCacheStats reports the process-wide volume staging cache
// counters: analytic sources are materialised once per identity and every
// later brick stage is served as a zero-copy view (see internal/volume).
// Set GVMR_STAGING_BYTES to resize the cache ("0" or "off" disables), or
// Options.NoStagingCache to bypass it for one render.
func StagingCacheStats() volume.CacheStats { return volume.Cache.Stats() }

// FlushStagingCache drops every cached volume, releasing its memory.
func FlushStagingCache() { volume.Cache.Flush() }
