// Distributed golden tests: the cluster coordinator sharding brick
// map-tasks over in-process HTTP worker nodes must reproduce the
// committed single-node golden digests bit for bit — in the healthy
// case, with a worker killed mid-job, and with a corrupted response
// retried. This is the end-to-end acceptance for internal/dist: the
// same file of digests guards the in-process renderer and the cluster.
package gvmr_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/dist"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

func committedGoldens(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v", goldenPath, err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// goldenJob rebuilds goldenConfigs[i] as a distributed JobSpec with the
// exact fitted camera the single-node golden renders used.
func goldenJob(t *testing.T, i int) dist.JobSpec {
	t.Helper()
	c := goldenConfigs[i]
	sp := volume.NewSpace(dataset.PaperDims(c.dataset, c.edge))
	cam, err := camera.Fit(sp.Bounds(), c.size, c.size)
	if err != nil {
		t.Fatal(err)
	}
	return dist.JobSpec{
		Dataset: c.dataset, Edge: c.edge,
		Width: c.size, Height: c.size,
		GPUs: c.gpus, Shading: c.shading,
		StepVoxels: 1, TerminationAlpha: 0.98,
		Camera: dist.CameraFrom(cam),
	}
}

func startGoldenWorkers(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		wk, err := dist.NewWorker(dist.WorkerConfig{Spec: cluster.AC(1)})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle(dist.MapPath, wk)
		// Every worker is reduce-capable, like a real gvmrd; a classic
		// coordinator simply never calls these endpoints.
		mux.HandleFunc(dist.ReducePath, wk.HandleReducePush)
		mux.HandleFunc(dist.CollectPath, wk.HandleCollect)
		var h http.Handler = mux
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// goldenPartitionJob rebuilds the adversarial non-convex golden (the
// shaded skull on 16 bricks, interleaved into 2 checkerboard units) as a
// distributed JobSpec, at the fitted view (angle nil) or an orbit angle.
func goldenPartitionJob(t *testing.T, angle *float64) dist.JobSpec {
	t.Helper()
	job := goldenJob(t, 0) // config 0 is the shaded skull
	if angle != nil {
		src, err := dataset.New("skull", dataset.PaperDims("skull", 32))
		if err != nil {
			t.Fatal(err)
		}
		cam, err := core.OrbitCamera(src, job.Width, job.Height, *angle)
		if err != nil {
			t.Fatal(err)
		}
		job.Camera = dist.CameraFrom(cam)
	}
	job.BricksPerGPU = 8
	job.Partition = &dist.PartitionSpec{Scheme: "interleave", Parts: 2}
	return job
}

// TestDistributedGoldenNonConvex is the acceptance battery for the
// non-convex partition path: the adversarial interleaved goldens,
// rendered through the cluster in every wire regime — classic and
// distributed reduce, compressed and identity — must reproduce the
// committed single-process digests bit for bit. Rays re-enter units
// here, so whole fragment *lists* ride the v2/cf2 codecs and the
// exchange; one moved bit anywhere in that path fails this test.
func TestDistributedGoldenNonConvex(t *testing.T) {
	want := committedGoldens(t)
	for _, mode := range []struct {
		name       string
		distReduce bool
		noCompress bool
	}{
		{"classic", false, false},
		{"classic-nocompress", false, true},
		{"reduce", true, false},
		{"reduce-nocompress", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			addrs := startGoldenWorkers(t, 3, nil)
			coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
				Nodes: addrs, DistReduce: mode.distReduce, NoCompress: mode.noCompress,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := coord.Render(context.Background(), goldenPartitionJob(t, nil))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Image.Digest(); got != want[goldenPartitionBase] {
				t.Errorf("%s: digest %s != committed %s", goldenPartitionBase, got, want[goldenPartitionBase])
			}
			for _, angle := range goldenPartitionOrbitAngles {
				angle := angle
				res, _, err := coord.Render(context.Background(), goldenPartitionJob(t, &angle))
				if err != nil {
					t.Fatalf("orbit %v: %v", angle, err)
				}
				name := goldenPartitionName(angle)
				if got := res.Image.Digest(); got != want[name] {
					t.Errorf("%s: digest %s != committed %s", name, got, want[name])
				}
			}
		})
	}
}

// TestDistributedGoldenNonConvexWorkerKilled: the adversarial partition
// frames with the first-contacted worker crashing mid-job and staying
// dead — retries must land whole unit lists elsewhere and the digests
// must not move.
func TestDistributedGoldenNonConvexWorkerKilled(t *testing.T) {
	want := committedGoldens(t)
	var deadNode atomic.Int64
	addrs := startGoldenWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		node := int64(i + 1)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if deadNode.CompareAndSwap(0, node) || deadNode.Load() == node {
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	})
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := coord.Render(context.Background(), goldenPartitionJob(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Image.Digest(); got != want[goldenPartitionBase] {
		t.Errorf("%s with killed worker: digest %s != committed %s",
			goldenPartitionBase, got, want[goldenPartitionBase])
	}
	if deadNode.Load() == 0 {
		t.Error("no worker was ever contacted — fault not exercised")
	}
	if st := coord.Stats(); st.NodeDowns < 1 {
		t.Errorf("worker death not recorded: %+v", st)
	}
}

// TestDistributedGoldenImages: every committed golden configuration,
// rendered over 2 and 3 worker nodes, digests equal to testdata/golden.json.
func TestDistributedGoldenImages(t *testing.T) {
	want := committedGoldens(t)
	for i, c := range goldenConfigs {
		job := goldenJob(t, i)
		for _, workers := range []int{2, 3} {
			addrs := startGoldenWorkers(t, workers, nil)
			coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs})
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := coord.Render(context.Background(), job)
			if err != nil {
				t.Fatalf("%s over %d workers: %v", c.name, workers, err)
			}
			if got := res.Image.Digest(); got != want[c.name] {
				t.Errorf("%s over %d workers: digest %s != committed %s",
					c.name, workers, got, want[c.name])
			}
		}
	}
}

// TestDistributedGoldenOrbit renders the committed orbit views through
// the cluster — the same frames the CI smoke requests from a live
// 3-worker gvmrd deployment.
func TestDistributedGoldenOrbit(t *testing.T) {
	want := committedGoldens(t)
	addrs := startGoldenWorkers(t, 3, nil)
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs})
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.New("skull", dataset.PaperDims("skull", 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, angle := range goldenOrbitAngles {
		cam, err := core.OrbitCamera(src, 64, 64, angle)
		if err != nil {
			t.Fatal(err)
		}
		job := dist.JobSpec{
			Dataset: "skull", Edge: 32, Width: 64, Height: 64,
			GPUs: 2, Shading: true,
			StepVoxels: 1, TerminationAlpha: 0.98,
			Camera: dist.CameraFrom(cam),
		}
		res, _, err := coord.Render(context.Background(), job)
		if err != nil {
			t.Fatalf("orbit %v: %v", angle, err)
		}
		name := goldenOrbitName(angle)
		if got := res.Image.Digest(); got != want[name] {
			t.Errorf("%s distributed: digest %s != committed %s", name, got, want[name])
		}
	}
}

// TestDistributedReduceGoldenOrbit renders the committed orbit views
// with the reduce phase on the worker fleet: mappers exchange pixel
// ranges peer-to-peer and the coordinator assembles near-final ranges —
// the digests must still equal testdata/golden.json bit for bit, with
// every frame actually carried by the exchange (no silent fallback).
func TestDistributedReduceGoldenOrbit(t *testing.T) {
	want := committedGoldens(t)
	addrs := startGoldenWorkers(t, 3, nil)
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs, DistReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.New("skull", dataset.PaperDims("skull", 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, angle := range goldenOrbitAngles {
		cam, err := core.OrbitCamera(src, 64, 64, angle)
		if err != nil {
			t.Fatal(err)
		}
		job := dist.JobSpec{
			Dataset: "skull", Edge: 32, Width: 64, Height: 64,
			GPUs: 2, Shading: true,
			StepVoxels: 1, TerminationAlpha: 0.98,
			Camera: dist.CameraFrom(cam),
		}
		res, _, err := coord.Render(context.Background(), job)
		if err != nil {
			t.Fatalf("reduce orbit %v: %v", angle, err)
		}
		name := goldenOrbitName(angle)
		if got := res.Image.Digest(); got != want[name] {
			t.Errorf("%s distributed-reduce: digest %s != committed %s", name, got, want[name])
		}
	}
	st := coord.Stats()
	if st.ReduceJobs != int64(len(goldenOrbitAngles)) || st.ReduceFallbacks != 0 {
		t.Errorf("exchange did not carry every frame: %+v", st)
	}
}

// TestDistributedReduceGoldenPeerKilled kills one worker's exchange
// endpoints (reduce push and collect) while leaving its map endpoint
// alive — a peer dying mid-exchange. Every committed golden config must
// still digest exactly: the coordinator abandons each exchange and falls
// back to the classic coordinator-local composite.
func TestDistributedReduceGoldenPeerKilled(t *testing.T) {
	want := committedGoldens(t)
	var killed atomic.Int64
	addrs := startGoldenWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		// Wrap the whole mux surface: map passes through, exchange dies.
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == dist.ReducePath || r.URL.Path == dist.CollectPath {
				killed.Add(1)
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	})
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs, DistReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range goldenConfigs {
		res, _, err := coord.Render(context.Background(), goldenJob(t, i))
		if err != nil {
			t.Fatalf("%s with killed exchange peer: %v", c.name, err)
		}
		if got := res.Image.Digest(); got != want[c.name] {
			t.Errorf("%s with killed exchange peer: digest %s != committed %s",
				c.name, got, want[c.name])
		}
	}
	st := coord.Stats()
	if killed.Load() >= 1 && st.ReduceFallbacks < 1 {
		t.Errorf("peer death did not register as a fallback: %+v", st)
	}
}

// TestDistributedGoldenUnderFaults: mid-job, one worker dies and another
// worker's response is silently corrupted — the cluster must still
// reproduce the committed digests exactly. The faults attach to whichever
// nodes the (port-dependent) placement actually uses: the first node
// contacted dies, and the first intact payload from a surviving node gets
// a bit flipped, so both fault paths are exercised on every run. (The
// straggler/hedging fault is covered deterministically by the
// internal/dist suite, where placement is pinned.)
func TestDistributedGoldenUnderFaults(t *testing.T) {
	want := committedGoldens(t)
	var deadNode atomic.Int64 // 1-based index of the node that died; 0 = nobody yet
	var corrupted atomic.Bool
	addrs := startGoldenWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		node := int64(i + 1)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if deadNode.CompareAndSwap(0, node) || deadNode.Load() == node {
				// First node ever contacted: it crashes now and stays dead.
				panic(http.ErrAbortHandler)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if rec.Code == http.StatusOK && len(body) > 10 && corrupted.CompareAndSwap(false, true) {
				body[10] ^= 0x40 // bit flip; digest header left advertising the original
			}
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(body)
		})
	})
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range goldenConfigs {
		res, _, err := coord.Render(context.Background(), goldenJob(t, i))
		if err != nil {
			t.Fatalf("%s under faults: %v", c.name, err)
		}
		if got := res.Image.Digest(); got != want[c.name] {
			t.Errorf("%s under faults: digest %s != committed %s", c.name, got, want[c.name])
		}
	}
	if deadNode.Load() == 0 {
		t.Error("no worker was ever contacted — fault not exercised")
	}
	if !corrupted.Load() {
		t.Error("no response was corrupted — fault not exercised")
	}
	st := coord.Stats()
	if st.Retries < 2 || st.NodeDowns < 2 || st.Corrupt < 1 {
		t.Errorf("faults not recorded (want ≥2 retries, ≥2 node-downs, ≥1 corrupt): %+v", st)
	}
}
