// Out-of-core acceptance: a bricked v2 volume file rendered through the
// demand pager must reproduce the committed golden digests bit for bit —
// with a staging budget far smaller than the dense volume, so the render
// provably streamed (evictions and reloads > 0) — single-process and
// through the distributed cluster path.
package gvmr_test

import (
	"context"
	"path/filepath"
	"testing"

	"gvmr"
	"gvmr/internal/dist"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// writeGoldenSkullV2 writes the golden skull dataset (config 0) to a
// bricked v2 file with 8³ bricks and compression.
func writeGoldenSkullV2(t *testing.T) string {
	t.Helper()
	c := goldenConfigs[0] // shaded skull, 32³, 2 GPUs, 64×64
	src, err := gvmr.Dataset(c.dataset, c.edge)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "skull32.gvmr")
	if err := gvmr.WriteVolumeFileOpts(path, src, gvmr.VolumeFileOptions{BrickEdge: 8, Compress: true}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOutOfCorePagedGolden renders the committed shaded-skull golden from
// a v2 file through a staging cache that holds only four of the file's 64
// bricks. The digest must match the committed in-RAM golden exactly, and
// the cache/pager counters must prove bricks actually cycled through disk.
func TestOutOfCorePagedGolden(t *testing.T) {
	want := committedGoldens(t)
	c := goldenConfigs[0]
	path := writeGoldenSkullV2(t)
	ps, err := volume.OpenFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	// Four 8³ pages: ~2% of the 128 KiB dense volume.
	pageCost := volume.Dims{X: 8, Y: 8, Z: 8}.Bytes() + volume.MacrocellBytes(volume.Dims{X: 8, Y: 8, Z: 8})
	cache := volume.NewStagingCache(4 * pageCost)
	ps.SetCache(cache)

	tf, err := gvmr.Preset(c.dataset)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gvmr.NewCluster(c.gpus)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gvmr.Render(cl, gvmr.Options{
		Source: ps, TF: tf,
		Width: c.size, Height: c.size,
		GPUs: c.gpus, Shading: c.shading,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Image.Digest(); got != want[c.name] {
		t.Errorf("paged render digest %s != committed %s", got, want[c.name])
	}
	if ev := cache.Stats().Evictions; ev == 0 {
		t.Error("no staging-cache evictions: the render did not stream")
	}
	st := ps.Stats()
	if st.Reloads == 0 {
		t.Error("no pager reloads: no brick was re-read after eviction")
	}
	if st.BrickReads == 0 {
		t.Error("pager read no bricks")
	}
}

// TestOutOfCorePagedSkipsMatchInRAM embeds the skull in the central
// quarter of an otherwise exactly-zero 32³ volume — the shape of a real
// out-of-core capture with wide empty margins — and renders it as 64
// render bricks (8³ cores) over 4³ file bricks. The directory min/max
// must prove the margin bricks invisible under the skull transfer
// function (skipped as payload-free bricks, no disk reads), and the image
// must still be bit-identical to the same render from the in-RAM source.
func TestOutOfCorePagedSkipsMatchInRAM(t *testing.T) {
	c := goldenConfigs[0]
	// Nonzero field only in [12,20)³: every file brick outside records
	// [0,0] in the directory, and the skull TF maps 0 to zero alpha.
	skull, err := gvmr.Dataset(c.dataset, c.edge/2)
	if err != nil {
		t.Fatal(err)
	}
	inner := make([]float32, skull.Dims().Voxels())
	if err := skull.Fill(volume.Region{Ext: skull.Dims()}, inner); err != nil {
		t.Fatal(err)
	}
	d := volume.Dims{X: 32, Y: 32, Z: 32}
	v := volume.New(d)
	const org, box = 12, 8
	for z := 0; z < box; z++ {
		for y := 0; y < box; y++ {
			for x := 0; x < box; x++ {
				// Sample the 16³ skull's centre 8³ so the box has texture.
				v.Set(org+x, org+y, org+z, inner[(x+4)+16*((y+4)+16*(z+4))])
			}
		}
	}
	src := volume.NewVolumeSource(v, "embedded-skull")

	render := func(rsrc gvmr.Source) string {
		t.Helper()
		tf, err := gvmr.Preset(c.dataset)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := gvmr.NewCluster(c.gpus)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gvmr.Render(cl, gvmr.Options{
			Source: rsrc, TF: tf,
			Width: c.size, Height: c.size,
			GPUs: c.gpus, Shading: c.shading,
			BricksPerGPU: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Image.Digest()
	}
	wantDigest := render(src)

	path := filepath.Join(t.TempDir(), "embedded.gvmr")
	if err := gvmr.WriteVolumeFileOpts(path, src, gvmr.VolumeFileOptions{BrickEdge: 4, Compress: true}); err != nil {
		t.Fatal(err)
	}
	ps, err := volume.OpenFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.SetCache(volume.NewStagingCache(1 << 26))
	if got := render(ps); got != wantDigest {
		t.Errorf("paged 64-brick render digest %s != in-RAM %s", got, wantDigest)
	}
	st := ps.Stats()
	if st.SkippedBricks == 0 {
		t.Error("no render bricks skipped via directory min/max")
	}
	// 56 of the 64 render bricks lie wholly in the zero margin; skipping
	// them must leave most of the 512 file bricks untouched on disk.
	if st.BrickReads >= int64(st.Bricks)/2 {
		t.Errorf("%d brick reads for %d file bricks: skips saved no I/O", st.BrickReads, st.Bricks)
	}
}

// TestOutOfCoreDistributedGolden registers the v2 file as a dataset and
// renders it through the cluster coordinator over in-process HTTP worker
// nodes: workers page only the file bricks their assigned render bricks
// touch, and the collected image must still match the committed in-RAM
// golden bit for bit.
func TestOutOfCoreDistributedGolden(t *testing.T) {
	want := committedGoldens(t)
	const name = "skullfile-ooc"
	path := writeGoldenSkullV2(t)
	if err := gvmr.RegisterVolumeFile(name, path, "skull"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := dataset.UnregisterVolumeFile(name); err != nil {
			t.Error(err)
		}
	})

	before := dataset.FilePagerStats()
	if before == nil {
		t.Fatal("registered v2 volume reports no pager stats")
	}
	addrs := startGoldenWorkers(t, 3, nil)
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Nodes: addrs})
	if err != nil {
		t.Fatal(err)
	}
	job := goldenJob(t, 0) // same camera: the file's dims equal the golden's
	job.Dataset = name
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Image.Digest(); got != want[goldenConfigs[0].name] {
		t.Errorf("distributed paged digest %s != committed %s", got, want[goldenConfigs[0].name])
	}
	after := dataset.FilePagerStats()
	if after.BrickReads <= before.BrickReads {
		t.Error("distributed render paged no bricks")
	}
}
