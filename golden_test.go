// Golden-image regression tests: every built-in preset renders to a
// committed SHA-256 digest of its exact float32 framebuffer, so any
// change to the kernels, compositing, partitioning or scheduling that
// moves a single bit of a single pixel fails loudly.
//
// The digests in testdata/golden.json are produced by the renderer
// itself; regenerate after an intentional image change with
//
//	GVMR_UPDATE_GOLDEN=1 go test -run TestGoldenImages .
//
// and review the diff. The renderer is pure Go IEEE-754 float math with
// no fused-multiply-add contraction on amd64/arm64 test targets, so the
// digests are stable across runs, pool widths and serial/parallel modes
// — that stability is itself asserted here.
package gvmr_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gvmr"
	"gvmr/internal/mapreduce"
)

// goldenConfigs are the committed render configurations: the paper's two
// headline datasets plus the procedural plume field, at small dims so the
// suite stays fast.
var goldenConfigs = []struct {
	name    string
	dataset string
	edge    int
	gpus    int
	size    int
	shading bool
}{
	{"skull_32_shaded", "skull", 32, 2, 64, true},
	{"supernova_32", "supernova", 32, 2, 64, false},
	{"plume_32_procedural", "plume", 32, 2, 64, false},
}

// goldenOrbitAngles are the committed orbit-camera goldens: the same
// skull configuration viewed at fixed angles along the fitted orbit —
// the views the render service addresses with ?orbit=A, so the CI
// cluster smoke can diff served digests straight against this file.
var goldenOrbitAngles = []float64{0, 60, 120, 180, 240, 300}

func goldenOrbitName(angle float64) string {
	return fmt.Sprintf("skull_32_shaded_orbit%03.0f", angle)
}

// The adversarial non-convex goldens: the shaded skull re-bricked to 16
// bricks (2 GPUs × 8 bricks/GPU) and interleaved into 2 checkerboard
// units, so rays re-enter each unit several times and every (unit,
// pixel) compositing cell really carries a fragment *list* (DESIGN.md
// §12; the re-entry premise is pinned by core's TestInterleavedRayReentry).
// The orbit angles are the frames the CI cluster smoke requests with
// ?partition=interleave:2&bricks-per-gpu=8.
var goldenPartitionOrbitAngles = []float64{0, 120, 240}

const goldenPartitionBase = "skull_32_interleave2"

func goldenPartitionName(angle float64) string {
	return fmt.Sprintf("%s_orbit%03.0f", goldenPartitionBase, angle)
}

func adversarialPartition(o *gvmr.Options) {
	o.BricksPerGPU = 8
	o.Partition = gvmr.Interleaved{NumParts: 2}
}

func renderGoldenWith(t *testing.T, i int, part mapreduce.Partitioner, orbit *float64, mut func(*gvmr.Options)) *gvmr.Result {
	t.Helper()
	c := goldenConfigs[i]
	cl, err := gvmr.NewCluster(c.gpus)
	if err != nil {
		t.Fatal(err)
	}
	src, err := gvmr.Dataset(c.dataset, c.edge)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := gvmr.Preset(c.dataset)
	if err != nil {
		t.Fatal(err)
	}
	opt := gvmr.Options{
		Source: src, TF: tf, Width: c.size, Height: c.size,
		GPUs: c.gpus, Shading: c.shading,
		Partitioner: part,
	}
	if orbit != nil {
		opt.Camera, err = gvmr.OrbitCamera(src, c.size, c.size, *orbit)
		if err != nil {
			t.Fatal(err)
		}
	}
	if mut != nil {
		mut(&opt)
	}
	res, err := gvmr.Render(cl, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func renderGolden(t *testing.T, i int) *gvmr.Result {
	return renderGoldenWith(t, i, nil, nil, nil)
}

const goldenPath = "testdata/golden.json"

func TestGoldenImages(t *testing.T) {
	got := map[string]string{}
	for i, c := range goldenConfigs {
		res := renderGolden(t, i)
		if res.Image.MeanLuminance() <= 0 {
			t.Fatalf("%s: black image", c.name)
		}
		got[c.name] = res.Image.Digest()
		// Cross-run determinism, independent of the committed file: the
		// same configuration must reproduce the same bits.
		if again := renderGolden(t, i); again.Image.Digest() != got[c.name] {
			t.Errorf("%s: digest changed between two renders in one process", c.name)
		}
	}
	for _, angle := range goldenOrbitAngles {
		angle := angle
		res := renderGoldenWith(t, 0, nil, &angle, nil) // config 0 is the shaded skull
		if res.Image.MeanLuminance() <= 0 {
			t.Fatalf("%s: black image", goldenOrbitName(angle))
		}
		got[goldenOrbitName(angle)] = res.Image.Digest()
	}

	// Adversarial non-convex partition goldens. Each frame is rendered
	// with the interleaved partition AND with the same bricking convex
	// (partition unset): §12 says the partition must not move a bit, so
	// the committed digest is simultaneously the convex 16-brick digest.
	{
		res := renderGoldenWith(t, 0, nil, nil, adversarialPartition)
		if res.Image.MeanLuminance() <= 0 {
			t.Fatalf("%s: black image", goldenPartitionBase)
		}
		got[goldenPartitionBase] = res.Image.Digest()
		convex := renderGoldenWith(t, 0, nil, nil, func(o *gvmr.Options) { o.BricksPerGPU = 8 })
		if convex.Image.Digest() != got[goldenPartitionBase] {
			t.Errorf("%s: interleaved digest %s != convex 16-brick digest %s",
				goldenPartitionBase, got[goldenPartitionBase], convex.Image.Digest())
		}
	}
	for _, angle := range goldenPartitionOrbitAngles {
		angle := angle
		res := renderGoldenWith(t, 0, nil, &angle, adversarialPartition)
		if res.Image.MeanLuminance() <= 0 {
			t.Fatalf("%s: black image", goldenPartitionName(angle))
		}
		got[goldenPartitionName(angle)] = res.Image.Digest()
	}

	if os.Getenv("GVMR_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s (regenerate with GVMR_UPDATE_GOLDEN=1): %v", goldenPath, err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, digest := range got {
		if want[name] == "" {
			t.Errorf("%s: no committed digest (regenerate with GVMR_UPDATE_GOLDEN=1)", name)
		} else if want[name] != digest {
			t.Errorf("%s: image digest %s != committed %s — the rendered bits changed; "+
				"if intentional, regenerate with GVMR_UPDATE_GOLDEN=1 and review",
				name, digest, want[name])
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("committed digest %q has no matching config", name)
		}
	}
}

// TestGoldenPartitionerInvariance locks the compositing-invariance claim
// from partition.go into the golden suite: the partitioner only routes
// pixels to reducers, so round-robin (the committed default), striped and
// checkerboard partitionings must reproduce the committed digest exactly,
// for every testdata dataset. Per-pixel compositing sorts fragments by
// depth before folding, so which reducer owns a pixel — and in what order
// batches arrive there — cannot move a bit.
func TestGoldenPartitionerInvariance(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v", goldenPath, err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for i, c := range goldenConfigs {
		partitioners := map[string]mapreduce.Partitioner{
			"roundrobin":   mapreduce.RoundRobin{},
			"striped":      mapreduce.Striped{Width: c.size, StripeHeight: 8},
			"checkerboard": mapreduce.Checkerboard{Width: c.size, Tile: 16},
		}
		for pname, part := range partitioners {
			res := renderGoldenWith(t, i, part, nil, nil)
			if got := res.Image.Digest(); got != want[c.name] {
				t.Errorf("%s with %s partitioning: digest %s != committed %s",
					c.name, pname, got, want[c.name])
			}
		}
	}
}

// TestGoldenSequenceSerialVsParallel locks the scheduler contract down at
// the public API: an orbit rendered serially and through the parallel
// frame scheduler produces bit-identical images and per-frame virtual
// times.
func TestGoldenSequenceSerialVsParallel(t *testing.T) {
	render := func(serial bool) *gvmr.SequenceResult {
		t.Helper()
		cl, err := gvmr.NewCluster(2)
		if err != nil {
			t.Fatal(err)
		}
		src, err := gvmr.Dataset("skull", 24)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := gvmr.Preset("skull")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := gvmr.RenderSequence(cl, gvmr.Options{
			Source: src, TF: tf, Width: 48, Height: 48,
			SequenceSerial:  serial,
			SequenceWorkers: 4, // force a real pool in parallel mode
		}, 4, 360)
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}
	serial := render(true)
	parallel := render(false)
	if serial.LastImage.Digest() != parallel.LastImage.Digest() {
		t.Error("serial and parallel sequence images differ")
	}
	if !reflect.DeepEqual(serial.PerFrame, parallel.PerFrame) {
		t.Errorf("per-frame times differ:\nserial   %v\nparallel %v",
			serial.PerFrame, parallel.PerFrame)
	}
	if serial.Total != parallel.Total || serial.Agg != parallel.Agg {
		t.Error("sequence accounting differs between serial and parallel modes")
	}
}
