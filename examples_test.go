// Examples smoke test: builds and runs every examples/* binary at tiny
// dimensions (GVMR_EXAMPLE_TINY), so the example code paths are compiled
// and executed by tier-1 `go test ./...` instead of rotting as dead code.
package gvmr_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds binaries; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		goTool = "go" // fall back to PATH
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			runDir := t.TempDir() // examples write PNGs to their cwd
			bin := filepath.Join(runDir, name)
			build := exec.Command(goTool, "build", "-o", bin, "./examples/"+name)
			build.Dir = repoRoot
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			run := exec.Command(bin)
			run.Dir = runDir
			run.Env = append(os.Environ(), "GVMR_EXAMPLE_TINY=1")
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
	if found < 6 {
		t.Errorf("found %d examples, expected at least 6", found)
	}
}
