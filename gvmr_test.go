package gvmr_test

import (
	"path/filepath"
	"testing"

	"gvmr"
	"gvmr/internal/transfer"
)

// TestPublicAPIRoundTrip exercises the whole facade the way the README's
// quickstart does.
func TestPublicAPIRoundTrip(t *testing.T) {
	cl, err := gvmr.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := gvmr.Dataset("skull", 32)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gvmr.Render(cl, gvmr.Options{
		Source: src, TF: tf, Width: 64, Height: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.MeanLuminance() <= 0 {
		t.Error("black image")
	}
	if res.FPS <= 0 || res.Runtime <= 0 {
		t.Error("missing figures of merit")
	}
	out := filepath.Join(t.TempDir(), "x.png")
	if err := res.Image.WritePNG(out); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	names := gvmr.DatasetNames()
	if len(names) != 3 {
		t.Fatalf("datasets = %v", names)
	}
	for _, n := range names {
		src, err := gvmr.Dataset(n, 16)
		if err != nil {
			t.Fatal(err)
		}
		if src.Dims().Voxels() == 0 {
			t.Errorf("%s empty dims", n)
		}
		if _, err := gvmr.Preset(n); err != nil {
			t.Errorf("no preset for %s: %v", n, err)
		}
	}
	// Plume keeps the paper's aspect.
	plume, err := gvmr.Dataset("plume", 64)
	if err != nil {
		t.Fatal(err)
	}
	d := plume.Dims()
	if d.Z != 4*d.X {
		t.Errorf("plume dims %v should be 1:1:4", d)
	}
}

func TestPublicAPIVolumeFile(t *testing.T) {
	src, err := gvmr.Dataset("supernova", 16)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v.gvmr")
	if err := gvmr.WriteVolumeFile(path, src); err != nil {
		t.Fatal(err)
	}
	file, err := gvmr.OpenVolumeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if file.Dims() != src.Dims() {
		t.Errorf("file dims %v != %v", file.Dims(), src.Dims())
	}
}

func TestPublicAPICustomCamera(t *testing.T) {
	src, err := gvmr.Dataset("skull", 32)
	if err != nil {
		t.Fatal(err)
	}
	cam, err := gvmr.NewCamera(gvmr.V3(0, 0, 2), gvmr.V3(0, 0, 0), gvmr.V3(0, 1, 0),
		0.8, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gvmr.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gvmr.Render(cl, gvmr.Options{
		Source: src, TF: tf, Width: 48, Height: 48, Camera: cam,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.MeanLuminance() <= 0 {
		t.Error("black image from custom camera")
	}
}

func TestPublicAPICustomTransfer(t *testing.T) {
	tf, err := gvmr.TransferFromPoints([]transfer.Point{
		{S: 0, C: gvmr.RGBA(0, 0, 0, 0)},
		{S: 1, C: gvmr.RGBA(1, 0, 0, 1)},
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c := tf.Lookup(1); c.X != 1 {
		t.Errorf("custom TF lookup = %v", c)
	}
}

// TestPublicAPIRenderFrames exercises the parallel frame APIs the way an
// animation consumer would: build an orbit path, render it synchronously
// and as a stream, and check the two agree frame for frame.
func TestPublicAPIRenderFrames(t *testing.T) {
	src, err := gvmr.Dataset("skull", 24)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		t.Fatal(err)
	}
	opt := gvmr.Options{Source: src, TF: tf, Width: 48, Height: 48, SequenceWorkers: 3}
	cams, err := gvmr.OrbitCameras(src, 48, 48, 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gvmr.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	results, err := gvmr.RenderFrames(cl, opt, cams)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d frames", len(results))
	}
	for i, r := range results {
		if r.Image.MeanLuminance() <= 0 {
			t.Errorf("frame %d black", i)
		}
	}
	if cl.Env.Now() <= 0 {
		t.Error("session clock did not advance")
	}

	cl2, err := gvmr.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	stream, stop, err := gvmr.RenderAsync(cl2, opt, cams)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	i := 0
	for fr := range stream {
		if fr.Err != nil {
			t.Fatalf("frame %d: %v", fr.Index, fr.Err)
		}
		if fr.Index != i {
			t.Fatalf("frame %d delivered at position %d", fr.Index, i)
		}
		if fr.Result.Image.Digest() != results[i].Image.Digest() {
			t.Errorf("stream frame %d differs from synchronous frame", i)
		}
		i++
	}
	if i != 3 {
		t.Fatalf("stream delivered %d of 3 frames", i)
	}
}
