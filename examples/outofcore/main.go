// Out-of-core rendering: the volume lives in a bricked (v2) file on the
// simulated cluster's disks and is streamed through the GPUs brick by
// brick — more bricks than GPUs, each disk load charged at the paper's
// ≈20 ms/64³ rate, overlapped with kernel execution by the MapReduce
// library's prefetching loader. The demand pager stages individual file
// bricks through the bounded staging cache, so the render never holds
// the dense volume in memory, and the file's per-brick min/max lets
// staging skip transfer-function-empty bricks without touching disk.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gvmr"
)

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)

	// Generate a supernova volume file (what cmd/volgen does).
	dir, err := os.MkdirTemp("", "gvmr-ooc")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "supernova.gvmr")
	src, err := gvmr.Dataset("supernova", tinyOr(256, 32))
	if err != nil {
		log.Fatal(err)
	}
	if err := gvmr.WriteVolumeFileOpts(path, src, gvmr.VolumeFileOptions{Compress: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%v, %.0f MiB dense)\n", path, src.Dims(),
		float64(src.Dims().Bytes())/(1<<20))

	// Open it as a demand-paged source and render out-of-core on 2 GPUs
	// with 4 bricks per GPU: 8 render bricks cycle through 2 devices,
	// paging file bricks in and out of the staging cache as they go.
	file, err := gvmr.OpenVolumeFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer file.Close()

	tf, err := gvmr.Preset("supernova")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := gvmr.NewCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gvmr.Render(cl, gvmr.Options{
		Source:       file,
		TF:           tf,
		Width:        tinyOr(512, 48),
		Height:       tinyOr(512, 48),
		FromDisk:     true, // charge disk I/O per brick
		BricksPerGPU: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Image.WritePNG("supernova_ooc.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core frame: %v over %d bricks on %d GPUs (%.0f MVPS)\n",
		res.Runtime, res.Grid.NumBricks(), res.GPUs, res.VPSMillions)
	fmt.Printf("partition+io share (disk loads + transfers): %v of %v mean per GPU\n",
		res.Stats.MeanStage.PartitionIO, res.Stats.MeanStage.Total())
	if pager, ok := file.(interface{ Stats() gvmr.PagerStats }); ok {
		s := pager.Stats()
		fmt.Printf("pager: %d file bricks, %d reads (%.1f MiB), %d reloads, %d skipped by min/max\n",
			s.Bricks, s.BrickReads, float64(s.BytesRead)/(1<<20), s.Reloads, s.SkippedBricks)
	}
	fmt.Println("wrote supernova_ooc.png")
}
