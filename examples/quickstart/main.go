// Quickstart: render the skull dataset on a simulated 4-GPU cluster and
// write the image to skull.png — the "hello world" of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"gvmr"
)

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)

	// A cluster with four Tesla-class GPUs (one node on the paper's
	// testbed). All hardware is simulated; all rendering is real.
	cl, err := gvmr.NewCluster(4)
	if err != nil {
		log.Fatal(err)
	}

	// The built-in synthetic skull at 128³ with its preset transfer
	// function.
	src, err := gvmr.Dataset("skull", tinyOr(128, 16))
	if err != nil {
		log.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		log.Fatal(err)
	}

	res, err := gvmr.Render(cl, gvmr.Options{
		Source: src,
		TF:     tf,
		Width:  tinyOr(512, 48),
		Height: tinyOr(512, 48),
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := res.Image.WritePNG("skull.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered %v as %d bricks on %d GPUs\n",
		src.Dims(), res.Grid.NumBricks(), res.GPUs)
	fmt.Printf("frame time %v  (%.2f FPS, %.0f million voxels/s)\n",
		res.Runtime, res.FPS, res.VPSMillions)
	st := res.Stats.MeanStage
	fmt.Printf("per-GPU stage breakdown: map %v, partition+io %v, sort %v, reduce %v\n",
		st.Map, st.PartitionIO, st.Sort, st.Reduce)
	fmt.Println("wrote skull.png")
}
