// Scaling study: render the same volume with 1–8 GPUs and print the
// paper's three figures of merit (§4.2): runtime, voxels per second, and
// parallel efficiency. The 8-GPU communication penalty of Figure 3 shows
// up as falling efficiency.
package main

import (
	"fmt"
	"log"
	"os"

	"gvmr"
)

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)

	src, err := gvmr.Dataset("skull", tinyOr(256, 16))
	if err != nil {
		log.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GPUs  runtime      FPS    MVPS   efficiency")
	var base float64
	for _, gpus := range []int{1, 2, 4, 8} {
		cl, err := gvmr.NewCluster(gpus)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gvmr.Render(cl, gvmr.Options{
			Source: src, TF: tf, Width: tinyOr(512, 48), Height: tinyOr(512, 48), GPUs: gpus,
		})
		if err != nil {
			log.Fatal(err)
		}
		sec := res.Runtime.Seconds()
		if gpus == 1 {
			base = sec
		}
		eff := base / (float64(gpus) * sec)
		fmt.Printf("%-4d  %-10v  %5.2f  %5.0f  %.2f\n",
			gpus, res.Runtime, res.FPS, res.VPSMillions, eff)
	}
}
