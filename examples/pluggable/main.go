// Pluggability (§6.1): the MapReduce structure makes the volume-sampling
// technique and the compositing technique independently swappable — change
// the map phase to switch ray casting for slicing, change the partition +
// reduce to switch direct-send for binary-swap. This example renders the
// same scene all four ways and compares runtimes and images.
package main

import (
	"fmt"
	"log"
	"os"

	"gvmr"
)

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)

	src, err := gvmr.Dataset("skull", tinyOr(128, 16))
	if err != nil {
		log.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*gvmr.Options)
	}{
		{"raycast + direct-send (paper)", func(o *gvmr.Options) {}},
		{"raycast + binary-swap", func(o *gvmr.Options) { o.Compositor = gvmr.BinarySwap }},
		{"slicing + direct-send", func(o *gvmr.Options) { o.Sampler = gvmr.Slicing }},
		{"slicing + binary-swap", func(o *gvmr.Options) {
			o.Sampler = gvmr.Slicing
			o.Compositor = gvmr.BinarySwap
		}},
	}

	fmt.Println("variant                          runtime      MVPS   luminance")
	for _, c := range cases {
		cl, err := gvmr.NewCluster(4)
		if err != nil {
			log.Fatal(err)
		}
		opt := gvmr.Options{Source: src, TF: tf, Width: tinyOr(512, 48), Height: tinyOr(512, 48)}
		c.mutate(&opt)
		res, err := gvmr.Render(cl, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-31s  %-10v  %5.0f  %.4f\n",
			c.name, res.Runtime, res.VPSMillions, res.Image.MeanLuminance())
	}
	fmt.Println("\nonly Options.Sampler / Options.Compositor changed between rows —")
	fmt.Println("no renderer code was touched, which is the paper's §6.1 claim.")
}
