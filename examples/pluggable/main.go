// Pluggability (§6.1): the MapReduce structure makes the volume-sampling
// technique and the compositing technique independently swappable — change
// the map phase to switch ray casting for slicing, change the partition +
// reduce to switch direct-send for binary-swap. This example renders the
// same scene all four ways and compares runtimes and images.
package main

import (
	"fmt"
	"log"
	"os"

	"gvmr"
)

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)

	src, err := gvmr.Dataset("skull", tinyOr(128, 16))
	if err != nil {
		log.Fatal(err)
	}
	tf, err := gvmr.Preset("skull")
	if err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*gvmr.Options)
	}{
		{"raycast + direct-send (paper)", func(o *gvmr.Options) {}},
		{"raycast + binary-swap", func(o *gvmr.Options) { o.Compositor = gvmr.BinarySwap }},
		{"slicing + direct-send", func(o *gvmr.Options) { o.Sampler = gvmr.Slicing }},
		{"slicing + binary-swap", func(o *gvmr.Options) {
			o.Sampler = gvmr.Slicing
			o.Compositor = gvmr.BinarySwap
		}},
	}

	fmt.Println("variant                          runtime      MVPS   luminance")
	for _, c := range cases {
		cl, err := gvmr.NewCluster(4)
		if err != nil {
			log.Fatal(err)
		}
		opt := gvmr.Options{Source: src, TF: tf, Width: tinyOr(512, 48), Height: tinyOr(512, 48)}
		c.mutate(&opt)
		res, err := gvmr.Render(cl, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-31s  %-10v  %5.0f  %.4f\n",
			c.name, res.Runtime, res.VPSMillions, res.Image.MeanLuminance())
	}
	fmt.Println("\nonly Options.Sampler / Options.Compositor changed between rows —")
	fmt.Println("no renderer code was touched, which is the paper's §6.1 claim.")

	partitionDemo(src, tf)
}

// shellPartition is a custom, deliberately non-convex brick partition:
// bricks are grouped into concentric Chebyshev shells around the grid
// center. A shell is hollow, so a ray crossing the volume re-enters its
// shell units — each (unit, pixel) compositing cell carries a fragment
// list instead of a single fragment (DESIGN.md §12).
type shellPartition struct{ parts int }

func (p shellPartition) Name() string              { return fmt.Sprintf("shell:%d", p.parts) }
func (p shellPartition) Parts(*gvmr.BrickGrid) int { return p.parts }

func (p shellPartition) Assign(b gvmr.Brick, g *gvmr.BrickGrid) int {
	// Rank the distances that actually occur on this grid, so every
	// shell unit is non-empty regardless of the planner's brick counts
	// (the planner rejects partitions with empty units).
	return rankOf(b, g) % p.parts
}

// chebyshev is the brick's Chebyshev distance to the grid center, in
// half-steps (doubled coordinates keep the center exact for even counts).
func chebyshev(b gvmr.Brick, g *gvmr.BrickGrid) int {
	d := 0
	for axis := 0; axis < 3; axis++ {
		v := 2*b.Index[axis] - (g.Counts[axis] - 1)
		if v < 0 {
			v = -v
		}
		if v > d {
			d = v
		}
	}
	return d
}

// rankOf returns how many distinct smaller shell distances exist on the
// grid — the brick's shell index, counted from the center out.
func rankOf(b gvmr.Brick, g *gvmr.BrickGrid) int {
	d := chebyshev(b, g)
	seen := map[int]bool{}
	for _, other := range g.Bricks {
		if od := chebyshev(other, g); od < d {
			seen[od] = true
		}
	}
	return len(seen)
}

// partitionDemo registers the custom scheme — making it addressable by
// name from HTTP requests and distributed job specs, exactly like the
// builtin "interleave" — and shows that regrouping bricks into
// non-convex units does not move a single bit of the image.
func partitionDemo(src gvmr.Source, tf *gvmr.TransferFunc) {
	gvmr.RegisterPartition("shell", func(parts int) (gvmr.Partition, error) {
		return shellPartition{parts: parts}, nil
	})
	fmt.Printf("\nregistered partition schemes: %v\n", gvmr.PartitionSchemes())

	render := func(part gvmr.Partition) *gvmr.Result {
		cl, err := gvmr.NewCluster(4)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gvmr.Render(cl, gvmr.Options{
			Source: src, TF: tf, Width: tinyOr(512, 48), Height: tinyOr(512, 48),
			BricksPerGPU: 4, // 16 bricks, so there are at least two shells
			Partition:    part,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	shells, err := gvmr.BuildPartition("shell", 2)
	if err != nil {
		log.Fatal(err)
	}
	convex := render(nil)
	for _, part := range []gvmr.Partition{shells, gvmr.Interleaved{NumParts: 2}} {
		res := render(part)
		match := "IDENTICAL"
		if res.Image.Digest() != convex.Image.Digest() {
			match = "DIFFERENT (bug!)"
			defer os.Exit(1)
		}
		fmt.Printf("%-14s vs convex bricks: digests %s\n", part.Name(), match)
	}
	fmt.Println("\nnon-convex partitions change only how fragments are grouped in")
	fmt.Println("flight — per-unit depth-ordered lists — never the composited bits.")
}
