// Animation: render an orbit around the supernova and report the
// sustained frame rate — §4.2's point that "scientists care about the
// frame rate of their visualization". Virtual time accumulates across
// frames on one cluster, exactly like an interactive session.
package main

import (
	"fmt"
	"log"

	"gvmr"
)

func main() {
	log.SetFlags(0)

	src, err := gvmr.Dataset("supernova", 128)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := gvmr.Preset("supernova")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := gvmr.NewCluster(8)
	if err != nil {
		log.Fatal(err)
	}

	const frames = 8
	seq, err := gvmr.RenderSequence(cl, gvmr.Options{
		Source: src, TF: tf, Width: 512, Height: 512, Shading: true,
	}, frames, 360)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rendered %d frames of a full orbit in %v of cluster time\n",
		seq.Frames, seq.Total)
	fmt.Printf("sustained rate: %.2f FPS\n", seq.MeanFPS)
	for i, ft := range seq.PerFrame {
		fmt.Printf("  frame %d: %v\n", i, ft)
	}
	if err := seq.LastImage.WritePNG("orbit_last.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote orbit_last.png")
}
