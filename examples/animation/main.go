// Animation: render an orbit around the supernova and report the
// sustained frame rate — §4.2's point that "scientists care about the
// frame rate of their visualization". Virtual time accumulates across
// frames on one cluster, exactly like an interactive session.
package main

import (
	"fmt"
	"log"
	"os"

	"gvmr"
)

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)

	src, err := gvmr.Dataset("supernova", tinyOr(128, 16))
	if err != nil {
		log.Fatal(err)
	}
	tf, err := gvmr.Preset("supernova")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := gvmr.NewCluster(8)
	if err != nil {
		log.Fatal(err)
	}

	frames := tinyOr(8, 3)
	seq, err := gvmr.RenderSequence(cl, gvmr.Options{
		Source: src, TF: tf, Width: tinyOr(512, 48), Height: tinyOr(512, 48), Shading: true,
	}, frames, 360)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rendered %d frames of a full orbit in %v of cluster time\n",
		seq.Frames, seq.Total)
	fmt.Printf("sustained rate: %.2f FPS\n", seq.MeanFPS)
	for i, ft := range seq.PerFrame {
		fmt.Printf("  frame %d: %v\n", i, ft)
	}
	if err := seq.LastImage.WritePNG("orbit_last.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote orbit_last.png")
}
