// Histogram: the MapReduce substrate is a library, not just a renderer.
// This example runs a non-rendering job — binning samples of a synthetic
// field into a 64-bucket histogram — on the same simulated multi-GPU
// cluster, honoring the paper's restrictions (dense int32 keys,
// homogeneous values, round-robin partitioning, counting sort).
//
// It imports the in-module mapreduce package directly: the public gvmr
// facade covers rendering, while the substrate underneath is exactly what
// this example drives.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"gvmr/internal/cluster"
	"gvmr/internal/gpu"
	"gvmr/internal/mapreduce"
	"gvmr/internal/sim"
)

const buckets = 64

// sampleChunk is a range of the field to histogram.
type sampleChunk struct {
	id, n int
}

func (c sampleChunk) ID() int      { return c.id }
func (c sampleChunk) Bytes() int64 { return int64(c.n) * 4 }

// histMapper evaluates the field and bins each sample.
type histMapper struct{}

func (histMapper) Init(mapreduce.Ctx, *mapreduce.Worker) error { return nil }

func (histMapper) Stage(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk) ([]float64, error) {
	sc := c.(sampleChunk)
	vals := make([]float64, sc.n)
	for i := range vals {
		x := float64(sc.id*sc.n+i) * 1e-5
		vals[i] = (math.Sin(x*37)*math.Cos(x*11) + 1) / 2 // field in [0,1]
	}
	return vals, nil
}

func (histMapper) Map(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk,
	vals []float64, emit func(mapreduce.KV[int32])) error {
	// The binning itself is the (modeled) GPU work.
	w.GPUCompute(p, gpu.Stats{Threads: int64(len(vals)), Emitted: int64(len(vals))})
	for _, v := range vals {
		b := int32(v * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		emit(mapreduce.KV[int32]{Key: b, Val: 1})
	}
	return nil
}

// sumReducer folds counts per bucket.
type sumReducer struct {
	counts map[int32]int64
}

func (r *sumReducer) Reduce(key int32, vals []int32) {
	for _, v := range vals {
		r.counts[key] += int64(v)
	}
}

// tinyOr returns small instead of normal when GVMR_EXAMPLE_TINY is set:
// the repo's examples smoke test runs every example at toy dimensions so
// the example code paths stay exercised by tier-1 CI.
func tinyOr(normal, small int) int {
	if os.Getenv("GVMR_EXAMPLE_TINY") != "" {
		return small
	}
	return normal
}

func main() {
	log.SetFlags(0)
	env := sim.NewEnv()
	cl, err := cluster.New(env, cluster.AC(4))
	if err != nil {
		log.Fatal(err)
	}

	var chunks []mapreduce.Chunk
	for i := 0; i < 16; i++ {
		chunks = append(chunks, sampleChunk{id: i, n: tinyOr(100_000, 2_000)})
	}
	var reducers []*sumReducer
	stats, err := mapreduce.Run(mapreduce.Config[int32, []float64]{
		Cluster: cl,
		Mapper:  histMapper{},
		MakeReducer: func(int) mapreduce.Reducer[int32] {
			r := &sumReducer{counts: map[int32]int64{}}
			reducers = append(reducers, r)
			return r
		},
		KeyRange:   buckets,
		ValueBytes: 4,
		Chunks:     chunks,
	})
	if err != nil {
		log.Fatal(err)
	}

	total := int64(0)
	merged := make([]int64, buckets)
	for _, r := range reducers {
		for k, v := range r.counts {
			merged[k] += v
			total += v
		}
	}
	fmt.Printf("histogrammed %d samples in %v of virtual cluster time\n", total, stats.Makespan)
	fmt.Printf("stage means per GPU: map %v, partition+io %v, sort %v, reduce %v\n",
		stats.MeanStage.Map, stats.MeanStage.PartitionIO,
		stats.MeanStage.Sort, stats.MeanStage.Reduce)
	peak := int64(0)
	for _, v := range merged {
		if v > peak {
			peak = v
		}
	}
	for b := 0; b < buckets; b += 4 {
		bar := int(merged[b] * 40 / peak)
		fmt.Printf("%5.2f %s %d\n", float64(b)/buckets, stringsRepeat('#', bar), merged[b])
	}
}

func stringsRepeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
