// Empty-space-skipping contract tests: the macrocell DDA must be a pure
// accelerator. For every dataset, transfer function and shading mode, the
// image rendered with skipping enabled is bit-identical to the dense
// march, the skipped samples are exactly the dense samples it avoided
// (conservation), and on the presets it actually skips something.
package gvmr_test

import (
	"testing"

	"gvmr"
	"gvmr/internal/transfer"
)

// skipStats sums the sampling counters over a frame's workers.
func skipStats(res *gvmr.Result) (samples, skipped, cells int64) {
	return res.Stats.TotalSamples, res.Stats.TotalSamplesSkipped, res.Stats.TotalCells
}

func TestEmptySkipBitIdentityProperty(t *testing.T) {
	datasets := []string{"skull", "supernova", "plume"}
	tfs := []struct {
		name string
		fn   func(ds string) (*transfer.Func, error)
	}{
		{"preset", gvmr.Preset},
		{"gray", func(string) (*transfer.Func, error) { return transfer.Gray(), nil }},
	}
	for _, ds := range datasets {
		src, err := gvmr.Dataset(ds, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, tf := range tfs {
			fn, err := tf.fn(ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, shading := range []bool{false, true} {
				name := ds + "/" + tf.name
				if shading {
					name += "/shaded"
				}
				t.Run(name, func(t *testing.T) {
					render := func(noskip bool) *gvmr.Result {
						cl, err := gvmr.NewCluster(2)
						if err != nil {
							t.Fatal(err)
						}
						res, err := gvmr.Render(cl, gvmr.Options{
							Source: src, TF: fn, Width: 64, Height: 64,
							Shading: shading, NoEmptySkip: noskip,
						})
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					on := render(false)
					off := render(true)
					if on.Image.Digest() != off.Image.Digest() {
						t.Fatal("skip-on image differs from skip-off — conservativeness bug")
					}
					sOn, skOn, cOn := skipStats(on)
					sOff, skOff, cOff := skipStats(off)
					if skOff != 0 || cOff != 0 {
						t.Errorf("NoEmptySkip still traversed macrocells: skipped=%d cells=%d", skOff, cOff)
					}
					// Conservation: every skipped sample is one the dense
					// path took, and nothing else changed.
					if sOn+skOn != sOff {
						t.Errorf("sample conservation broken: on %d + skipped %d != off %d",
							sOn, skOn, sOff)
					}
					// The presets leave real empty space in all three
					// datasets; the skip structure must find some of it.
					if tf.name == "preset" && skOn == 0 {
						t.Errorf("no samples skipped under the %s preset", ds)
					}
					if skOn > 0 && cOn == 0 {
						t.Error("samples skipped without charging macrocell traversal")
					}
				})
			}
		}
	}
}

// TestEmptySkipSequenceIdentity renders a short orbit with skipping on
// and off through the public sequence API: every frame digest must
// match, and the aggregated stats must show the skip-on run doing
// strictly less sampling work for the same images.
func TestEmptySkipSequenceIdentity(t *testing.T) {
	render := func(noskip bool) []*gvmr.Result {
		cl, err := gvmr.NewCluster(2)
		if err != nil {
			t.Fatal(err)
		}
		src, err := gvmr.Dataset("skull", 24)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := gvmr.Preset("skull")
		if err != nil {
			t.Fatal(err)
		}
		cams, err := gvmr.OrbitCameras(src, 48, 48, 3, 360)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gvmr.RenderFrames(cl, gvmr.Options{
			Source: src, TF: tf, Width: 48, Height: 48,
			Shading: true, NoEmptySkip: noskip,
		}, cams)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := render(false)
	off := render(true)
	if len(on) != len(off) {
		t.Fatalf("frame counts differ: %d vs %d", len(on), len(off))
	}
	var totalSkipped int64
	for i := range on {
		if on[i].Image.Digest() != off[i].Image.Digest() {
			t.Errorf("frame %d: digests differ between skip on/off", i)
		}
		sOn, skOn, _ := skipStats(on[i])
		sOff, _, _ := skipStats(off[i])
		if sOn+skOn != sOff {
			t.Errorf("frame %d: conservation broken (%d+%d != %d)", i, sOn, skOn, sOff)
		}
		totalSkipped += skOn
	}
	if totalSkipped == 0 {
		t.Error("orbit skipped nothing on the skull preset")
	}
}
