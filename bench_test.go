// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus host-side
// microbenchmarks of the real computational kernels.
//
// The figure benchmarks drive the deterministic simulation at the scale
// selected by GVMR_SCALE (paper|quick, default paper — the paper's full
// 512² image, 128³–1024³, 1–32 GPU grid) and print the regenerated tables
// once. The expensive scaling sweep is shared across benchmarks through a
// cache, so Fig3/Fig4/Claims all report from one run. ns/op for the
// figure benchmarks is host wall time of the simulation, not the virtual
// cluster time; the printed tables carry the virtual (paper-comparable)
// numbers.
package gvmr_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/experiments"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

var sweepCache struct {
	once sync.Once
	rows []experiments.SweepRow
	err  error
}

func sweepRows(b *testing.B) []experiments.SweepRow {
	b.Helper()
	sweepCache.once.Do(func() {
		sweepCache.rows, sweepCache.err = experiments.Sweep(experiments.FromEnv())
	})
	if sweepCache.err != nil {
		b.Fatal(sweepCache.err)
	}
	return sweepCache.rows
}

var printOnce sync.Map

// printTable prints each named table a single time per process, so
// repeated benchmark iterations don't flood the output.
func printTable(name string, render func() string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", render())
	}
}

// BenchmarkFig2 regenerates Figure 2: one frame of each dataset.
func BenchmarkFig2(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2(sc, "")
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig2", t.String)
	}
}

// BenchmarkFig3 regenerates Figure 3: the stage breakdown over the full
// (volume × GPU count) grid.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweepRows(b)
		t := experiments.Fig3(rows)
		printTable("fig3", t.String)
	}
}

// BenchmarkFig4 regenerates Figure 4: FPS and VPS series from the same
// sweep.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweepRows(b)
		fps, vps := experiments.Fig4(rows)
		printTable("fig4", func() string { return fps.String() + "\n" + vps.String() })
	}
}

// BenchmarkEfficiency regenerates the §4.2 parallel-efficiency figure of
// merit.
func BenchmarkEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweepRows(b)
		printTable("efficiency", experiments.Efficiency(rows).String)
	}
}

// BenchmarkSec63 regenerates the §6.3 map-phase bottleneck analysis
// (communication vs computation at 8 and 16 GPUs on the large volume).
func BenchmarkSec63(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Sec63(sc)
		if err != nil {
			b.Fatal(err)
		}
		printTable("sec63", t.String)
	}
}

// BenchmarkMicro regenerates the §3 micro-cost table (disk, PCIe up,
// fragment read-back).
func BenchmarkMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Micro()
		if err != nil {
			b.Fatal(err)
		}
		printTable("micro", t.String)
	}
}

// BenchmarkBaseline regenerates the footnote-1 comparison against the
// CPU-cluster (ParaView stand-in) renderer.
func BenchmarkBaseline(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		t, err := experiments.BaselineCmp(sc)
		if err != nil {
			b.Fatal(err)
		}
		printTable("baseline", t.String)
	}
}

// BenchmarkClaims checks the paper's headline claims against the sweep.
func BenchmarkClaims(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := sweepRows(b)
		printTable("claims", experiments.ClaimsReport(sc, rows).String)
	}
}

// BenchmarkInOutOfCore regenerates the in-core vs out-of-core comparison.
func BenchmarkInOutOfCore(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		t, err := experiments.InOutOfCore(sc)
		if err != nil {
			b.Fatal(err)
		}
		printTable("inoutcore", t.String)
	}
}

// BenchmarkAblation regenerates the §6.1/§7 design-choice ablations.
func BenchmarkAblation(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Ablations(sc)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation", t.String)
	}
}

// BenchmarkZeroCopy regenerates the §7 0-copy emission estimate.
func BenchmarkZeroCopy(b *testing.B) {
	sc := experiments.FromEnv()
	for i := 0; i < b.N; i++ {
		printTable("zerocopy", experiments.ZeroCopy(sc).String)
	}
}

// ---- Host microbenchmarks: the real computational kernels. ----

func benchScene(b *testing.B, edge int) (*camera.Camera, volume.Space, *volume.BrickData, render.Params) {
	b.Helper()
	src, err := dataset.New(dataset.Skull, volume.Cube(edge))
	if err != nil {
		b.Fatal(err)
	}
	g, err := volume.MakeGrid(src.Dims(), [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	bd, err := volume.FillBrick(src, g.Bricks[0])
	if err != nil {
		b.Fatal(err)
	}
	cam, err := camera.Fit(g.Space.Bounds(), 256, 256)
	if err != nil {
		b.Fatal(err)
	}
	return cam, g.Space, bd, render.DefaultParams(transfer.SkullPreset())
}

// BenchmarkHostCastPixel measures the host's real ray-casting throughput
// (the per-thread body of the map kernel). Params are prepared once per
// brick, as Kernel does — light normalisation, the opacity-corrected
// table and the brick's empty-space structure are all hoisted out of the
// per-ray path by Params.PrepareBrick.
func BenchmarkHostCastPixel(b *testing.B) {
	cam, sp, bd, prm := benchScene(b, 64)
	prm = prm.PrepareBrick(bd)
	var samples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px := 64 + i%128
		py := 64 + (i/128)%128
		_, s := render.CastPixel(cam, sp, bd, prm, px, py)
		samples += s.Samples
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/ray")
}

// BenchmarkHostCastPixelFineStep is the same ray at StepVoxels = 0.5,
// where every sample used to pay a math.Pow opacity correction that is
// now folded into the prepared transfer table.
func BenchmarkHostCastPixelFineStep(b *testing.B) {
	cam, sp, bd, prm := benchScene(b, 64)
	prm.StepVoxels = 0.5
	prm = prm.PrepareBrick(bd)
	var samples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px := 64 + i%128
		py := 64 + (i/128)%128
		_, s := render.CastPixel(cam, sp, bd, prm, px, py)
		samples += s.Samples
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/ray")
}

// BenchmarkHostCastPixelNoSkip is BenchmarkHostCastPixel with the
// macrocell DDA disabled: the A/B for the empty-space-skipping win on
// the host (virtual-time wins are measured by seqbench).
func BenchmarkHostCastPixelNoSkip(b *testing.B) {
	cam, sp, bd, prm := benchScene(b, 64)
	prm.NoEmptySkip = true
	prm = prm.Prepare()
	var samples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px := 64 + i%128
		py := 64 + (i/128)%128
		_, s := render.CastPixel(cam, sp, bd, prm, px, py)
		samples += s.Samples
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/ray")
}

// BenchmarkHostTrilinear measures raw trilinear sampling through a
// copy-backed brick. The per-brick sampler hoist (precomputed backing
// selection and origin floats) is what this path exercises: before the
// hoist every call re-derived them.
func BenchmarkHostTrilinear(b *testing.B) {
	_, _, bd, _ := benchScene(b, 64)
	r := rand.New(rand.NewSource(1))
	pts := make([][3]float32, 1024)
	for i := range pts {
		pts[i] = [3]float32{r.Float32() * 64, r.Float32() * 64, r.Float32() * 64}
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		sink += bd.Sample(p[0], p[1], p[2])
	}
	_ = sink
}

// BenchmarkHostTrilinearView is BenchmarkHostTrilinear through a
// zero-copy view-backed brick (the staging-cache fast path); the hoisted
// sampler makes the two backings cost the same.
func BenchmarkHostTrilinearView(b *testing.B) {
	src, err := dataset.New(dataset.Skull, volume.Cube(64))
	if err != nil {
		b.Fatal(err)
	}
	v, err := volume.Materialize(src)
	if err != nil {
		b.Fatal(err)
	}
	g, err := volume.MakeGrid(v.Dims, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	bd := volume.ViewBrick(v, g.Bricks[0])
	r := rand.New(rand.NewSource(1))
	pts := make([][3]float32, 1024)
	for i := range pts {
		pts[i] = [3]float32{r.Float32() * 64, r.Float32() * 64, r.Float32() * 64}
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		sink += bd.Sample(p[0], p[1], p[2])
	}
	_ = sink
}

// BenchmarkHostShadeStencil measures a shaded contributing sample's
// 7-fetch cost (1 classification + 6 stencil fetches), the heaviest
// consumer of the hoisted sampler.
func BenchmarkHostShadeStencil(b *testing.B) {
	cam, sp, bd, prm := benchScene(b, 64)
	prm.Shading = true
	prm = prm.PrepareBrick(bd)
	var samples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px := 64 + i%128
		py := 64 + (i/128)%128
		_, s := render.CastPixel(cam, sp, bd, prm, px, py)
		samples += s.Samples
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/ray")
}

// BenchmarkHostCountingSort measures the θ(n) counting sort on a
// realistic fragment load (256k fragments over a 512² key range slice).
func BenchmarkHostCountingSort(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	const n = 256 * 1024
	const keys = 512 * 512 / 8
	kvs := make([]mapreduce.KV[composite.Fragment], n)
	for i := range kvs {
		kvs[i] = mapreduce.KV[composite.Fragment]{Key: r.Int31n(keys)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapreduce.CountingSort(kvs, keys)
	}
	b.SetBytes(n * composite.FragmentBytes)
}

// BenchmarkHostCompositePixel measures per-pixel fragment compositing
// (sort by depth + front-to-back fold), the reduce inner loop.
func BenchmarkHostCompositePixel(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	frags := make([]composite.Fragment, 8)
	for i := range frags {
		a := r.Float32()
		frags[i] = composite.Fragment{
			Key: 1, R: a * r.Float32(), G: a * r.Float32(), B: a * r.Float32(),
			A: a, Depth: r.Float32() * 10,
		}
	}
	bg := vec.V4{X: 0.1, Y: 0.1, Z: 0.1, W: 1}
	buf := make([]composite.Fragment, len(frags))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, frags)
		composite.CompositePixel(buf, bg)
	}
}

// BenchmarkHostFieldSkull measures analytic dataset evaluation (the
// synthetic-data substitution's cost).
func BenchmarkHostFieldSkull(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		x := float64(i%101) / 101
		y := float64(i%103) / 103
		z := float64(i%107) / 107
		sink += dataset.SkullField(x, y, z)
	}
	_ = sink
}

// BenchmarkHostFieldSupernova measures the fBm-noise dataset evaluation.
func BenchmarkHostFieldSupernova(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		x := float64(i%101) / 101
		y := float64(i%103) / 103
		z := float64(i%107) / 107
		sink += dataset.SupernovaField(x, y, z)
	}
	_ = sink
}
